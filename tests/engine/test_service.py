"""Tests for the RecommendationService (batching, LRU cache, refresh)."""

import numpy as np
import pytest

from repro.engine import RecommendationService
from repro.models import BprMF


@pytest.fixture()
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


class TestTopK:
    def test_batched_matches_unbatched(self, model, tiny_split):
        users = np.arange(tiny_split.num_users)
        small = RecommendationService(model, batch_size=7).top_k(users, 5)
        large = RecommendationService(model, batch_size=10_000).top_k(users, 5)
        np.testing.assert_array_equal(small, large)

    def test_matches_model_recommend(self, model, tiny_split):
        service = RecommendationService(model)
        top = service.top_k(np.arange(5), 4)
        for user in range(5):
            assert list(top[user]) == model.recommend(user, k=4)

    def test_exclude_train_toggle(self, model, tiny_split):
        service = RecommendationService(model)
        positives = tiny_split.train_positive_sets()
        masked = service.top_k(np.arange(tiny_split.num_users), 5)
        for user, row in enumerate(masked):
            assert not (set(int(i) for i in row) & positives[user])

    def test_invalid_arguments(self, model):
        service = RecommendationService(model)
        with pytest.raises(ValueError):
            service.top_k(np.arange(3), 0)
        with pytest.raises(ValueError):
            service.top_k(np.arange(4).reshape(2, 2), 3)
        with pytest.raises(ValueError):
            RecommendationService()


class TestCache:
    def test_repeat_requests_hit_cache(self, model):
        service = RecommendationService(model)
        first = service.recommend(0, k=5)
        second = service.recommend(0, k=5)
        assert first == second
        assert service.cache_hits == 1 and service.cache_misses == 1

    def test_cache_keyed_by_k_and_exclusion(self, model):
        service = RecommendationService(model)
        service.recommend(0, k=5)
        service.recommend(0, k=6)
        service.recommend(0, k=5, exclude_train=False)
        assert service.cache_misses == 3

    def test_lru_eviction(self, model):
        service = RecommendationService(model, cache_size=2)
        service.recommend(0, k=3)
        service.recommend(1, k=3)
        service.recommend(2, k=3)  # evicts user 0
        service.recommend(0, k=3)
        assert service.cache_hits == 0 and service.cache_misses == 4

    def test_cache_disabled(self, model):
        service = RecommendationService(model, cache_size=0)
        service.recommend(0, k=3)
        service.recommend(0, k=3)
        assert service.cache_hits == 0 and service.cache_misses == 2

    def test_lru_eviction_respects_recency_order(self, model):
        """A cache hit refreshes recency: the least-recently-USED entry goes."""
        service = RecommendationService(model, cache_size=2)
        service.recommend(0, k=3)  # cache: [0]
        service.recommend(1, k=3)  # cache: [0, 1]
        service.recommend(0, k=3)  # hit — recency now [1, 0]
        service.recommend(2, k=3)  # evicts user 1, NOT user 0
        assert service.cache_hits == 1
        service.recommend(0, k=3)  # still cached
        assert service.cache_hits == 2
        service.recommend(1, k=3)  # was evicted -> miss
        assert service.cache_misses == 4

    def test_clear_cache_drops_entries_and_resets_stats(self, model):
        service = RecommendationService(model)
        service.recommend(0, k=3)
        service.recommend(0, k=3)
        assert service.cache_hits == 1
        service.clear_cache()
        assert service.cache_hits == 0 and service.cache_misses == 0
        service.recommend(0, k=3)
        assert service.cache_hits == 0 and service.cache_misses == 1

    def test_invalidate_users_is_targeted(self, model):
        """Only the named users' entries go; everyone else stays warm."""
        service = RecommendationService(model)
        service.recommend(0, k=3)
        service.recommend(0, k=5)  # two entries for user 0
        service.recommend(1, k=3)
        removed = service.invalidate_users([0])
        assert removed == 2
        assert service.cache_misses == 3  # counters preserved
        service.recommend(1, k=3)
        assert service.cache_hits == 1  # user 1 still cached
        service.recommend(0, k=3)
        assert service.cache_misses == 4  # user 0 re-served

    def test_invalidate_users_missing_user_is_noop(self, model):
        service = RecommendationService(model)
        service.recommend(0, k=3)
        assert service.invalidate_users([5, 6]) == 0
        assert service.invalidate_users(np.asarray([], dtype=np.int64)) == 0
        service.recommend(0, k=3)
        assert service.cache_hits == 1

    def test_invalidate_users_matches_full_scan_reference(self, model):
        """The per-user key index removes exactly what the old O(cache)
        key[0]-scan would have removed."""
        service = RecommendationService(model)
        for user in range(6):
            for k in (3, 5, 7):
                service.recommend(user, k=k)
                service.recommend(user, k=k, exclude_train=False)
        targets = {1, 3, 4, 99}  # 99: never cached
        expected = {key for key in service._cache if key[0] in targets}
        survivors = {key for key in service._cache if key[0] not in targets}
        removed = service.invalidate_users(sorted(targets))
        assert removed == len(expected)
        assert set(service._cache) == survivors
        # The secondary index holds no keys for the invalidated users.
        assert not (set(service._user_keys) & targets)

    def test_user_key_index_tracks_eviction(self, model):
        """Evicted entries leave the per-user index too — invalidating an
        already-evicted user is a counted no-op."""
        service = RecommendationService(model, cache_size=2)
        service.recommend(0, k=3)
        service.recommend(1, k=3)
        service.recommend(2, k=3)  # evicts user 0's only entry
        assert service.invalidate_users([0]) == 0
        assert 0 not in service._user_keys
        assert service.invalidate_users([2]) == 1

    def test_cache_stats_payload(self, model):
        service = RecommendationService(model, cache_size=8)
        stats = service.cache_stats()
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0,
                         "size": 0, "capacity": 8}
        service.recommend(0, k=3)
        service.recommend(0, k=3)
        service.recommend(1, k=3)
        stats = service.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)
        assert stats["size"] == 2 and stats["capacity"] == 8

    def test_cache_lookup_and_store_roundtrip(self, model):
        service = RecommendationService(model)
        assert service.cache_lookup(0, 4) is None  # counted miss
        direct = [int(i) for i in service.top_k(np.asarray([0]), 4)[0]]
        service.cache_store(0, 4, True, direct)
        assert service.cache_lookup(0, 4) == direct
        assert service.cache_hits == 1 and service.cache_misses == 1
        # Disabled cache: lookup/store are silent no-ops.
        bare = RecommendationService(model, cache_size=0)
        bare.cache_store(0, 4, True, direct)
        assert bare.cache_lookup(0, 4) is None
        assert bare.cache_hits == 0 and bare.cache_misses == 0


class TestCacheThreadSafety:
    def test_concurrent_recommend_invalidate_clear(self, model, tiny_split):
        """Hammer the LRU from many threads; the lock must keep the cache
        and its per-user index consistent (no lost updates, no KeyErrors)."""
        import threading

        service = RecommendationService(model, cache_size=16)
        oracle = {(user, k): [int(i) for i in row]
                  for k in (3, 5)
                  for user, row in zip(
                      range(tiny_split.num_users),
                      service.top_k(np.arange(tiny_split.num_users), k))}
        errors = []
        stop = threading.Event()

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    user = int(rng.integers(tiny_split.num_users))
                    k = int(rng.choice([3, 5]))
                    got = service.recommend(user, k=k)
                    if got != oracle[(user, k)]:
                        errors.append(f"user {user} k {k}: {got}")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(repr(error))

        def churner(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    if rng.random() < 0.1:
                        service.clear_cache()
                    else:
                        service.invalidate_users(
                            rng.integers(tiny_split.num_users, size=3))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(repr(error))

        threads = ([threading.Thread(target=reader, args=(s,))
                    for s in range(4)]
                   + [threading.Thread(target=churner, args=(100 + s,))
                      for s in range(2)])
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, errors[:5]
        with service._cache_lock:
            assert len(service._cache) <= service.cache_size
            # Index and cache agree exactly.
            indexed = {key for keys in service._user_keys.values()
                       for key in keys}
            assert indexed == set(service._cache)


class TestRefresh:
    def test_refresh_sees_new_weights(self, model):
        service = RecommendationService(model)
        before = service.recommend(0, k=3)
        model.user_factors.data[:] = -model.user_factors.data
        assert service.recommend(0, k=3) == before  # frozen snapshot
        service.refresh()
        np.testing.assert_allclose(service.index.user_embeddings,
                                   model.user_factors.data)
        assert service.cache_hits == 0 and service.cache_misses == 0

    def test_exclusion_index_shared_across_refresh(self, model):
        service = RecommendationService(model)
        exclusion = service.exclusion
        service.refresh()
        assert service.exclusion is exclusion

    def test_refresh_invalidates_cached_results(self, model):
        """Stale cached lists must never survive a snapshot refresh."""
        service = RecommendationService(model)
        before = service.recommend(0, k=3)
        model.user_factors.data[:] = -model.user_factors.data
        service.refresh()
        after = service.recommend(0, k=3)
        assert service.cache_hits == 0 and service.cache_misses == 1
        assert after != before  # negated embeddings invert the ranking

    def test_refresh_with_unchanged_weights_keeps_cache(self, model):
        service = RecommendationService(model)
        first = service.recommend(0, k=3)
        service.refresh()
        assert len(service._cache) == 1 and service.cache_misses == 1
        assert service.recommend(0, k=3) == first
        assert service.cache_hits == 1

    def test_refresh_always_clears_for_scorer_fallback(self, tiny_split):
        from repro.models import MultiVAE
        model = MultiVAE(tiny_split, seed=0)
        model.eval()
        service = RecommendationService(model, tiny_split)
        service.recommend(0, k=3)
        # Scorer snapshots cannot be diffed — refresh must stay conservative.
        service.refresh()
        assert len(service._cache) == 0 and service.cache_misses == 0


class TestShardedService:
    """Sharded and unsharded services must be interchangeable."""

    def test_identical_recommendations_for_identical_seeds(self, tiny_split):
        results = []
        for num_shards in (1, 3):
            model = BprMF(tiny_split, embedding_dim=8, seed=11)
            model.eval()
            service = RecommendationService(model, num_shards=num_shards)
            results.append([service.recommend(u, k=5)
                            for u in range(tiny_split.num_users)])
        assert results[0] == results[1]

    def test_sharded_cache_serves_sharded_results(self, model):
        service = RecommendationService(model, num_shards=4, cache_size=8)
        first = service.recommend(2, k=4)
        second = service.recommend(2, k=4)
        assert first == second
        assert service.cache_hits == 1 and service.cache_misses == 1

    def test_sharded_refresh_keeps_cache_when_unchanged(self, model):
        # A defensive refresh from the same weights must not cold-start the
        # cache: invalidation is gated on the embeddings actually changing.
        service = RecommendationService(model, num_shards=4)
        service.recommend(0, k=3)
        service.refresh()
        assert service.cache_misses == 1 and len(service._cache) == 1

    def test_sharded_refresh_clears_cache_on_weight_change(self, model):
        service = RecommendationService(model, num_shards=4)
        service.recommend(0, k=3)
        for parameter in model.parameters():
            parameter.data = parameter.data + 0.25
        service.refresh()
        assert service.cache_hits == 0 and service.cache_misses == 0
        assert len(service._cache) == 0


class TestModelIntegration:
    def test_recommend_uses_cached_service_in_eval(self, model):
        service = model.inference_service()
        assert model.inference_service() is service
        model.train()
        model.eval()
        assert model.inference_service() is not service

    def test_score_pairs_matches_score_users(self, model, tiny_split):
        users = np.array([0, 1, 2, 3])
        items = np.array([1, 0, 2, 2])
        full = np.asarray(model.score_users(users))
        np.testing.assert_allclose(model.score_pairs(users, items),
                                   full[np.arange(4), items])

    def test_load_state_dict_invalidates_service(self, model, tiny_split):
        state = model.state_dict()
        before = model.recommend(0, k=5)
        shifted = {name: value + 1.5 for name, value in state.items()}
        model.load_state_dict(shifted)
        fresh = np.asarray(model.score_users([0]))[0].copy()
        # Served recommendations must come from the NEW weights, not the
        # snapshot frozen before load_state_dict.
        positives = tiny_split.train_positive_sets()[0]
        fresh[list(positives)] = -np.inf
        expected = list(np.argsort(-fresh, kind="stable")[:5])
        assert model.recommend(0, k=5) == [int(i) for i in expected]
        model.load_state_dict(state)
        assert model.recommend(0, k=5) == before


class TestNoOpRefresh:
    def test_noop_refresh_keeps_backends_and_counters(self, tiny_split):
        from repro.engine import RecommendationService as Service
        model = BprMF(tiny_split, embedding_dim=8, seed=2)
        model.eval()
        service = Service(model, num_shards=3, candidate_mode="int8")
        service.top_k(np.arange(8), 4)
        sharded, candidates = service.sharded, service.candidates
        stats = service.certificate_stats
        service.refresh()
        # Unchanged embeddings: no re-shard, no requantise, counters intact.
        assert service.sharded is sharded
        assert service.candidates is candidates
        assert service.certificate_stats == stats
