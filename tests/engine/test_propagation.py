"""Tests for the PropagationEngine (CSR operator, dtype policy, buffers)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import SparseTensor, Tensor, sparse_matmul
from repro.engine import PropagationEngine

from ..helpers import check_gradient


@pytest.fixture()
def operator():
    return sp.random(7, 5, density=0.4, random_state=0, format="csr")


class TestConstruction:
    def test_from_dense_array(self):
        dense = np.arange(6, dtype=float).reshape(2, 3)
        engine = PropagationEngine(dense)
        np.testing.assert_allclose(engine.to_dense(), dense)
        assert engine.nnz == 5  # one entry is zero

    def test_from_any_sparse_format(self, operator):
        engine = PropagationEngine(operator.tocoo())
        assert engine.matrix.format == "csr"
        assert engine.shape == operator.shape

    def test_dtype_policy(self, operator):
        assert PropagationEngine(operator).dtype == np.float64
        engine32 = PropagationEngine(operator, dtype=np.float32)
        assert engine32.dtype == np.float32
        assert engine32.matrix.dtype == np.float32
        with pytest.raises(ValueError):
            PropagationEngine(operator, dtype=np.int32)

    def test_astype_roundtrip(self, operator):
        engine = PropagationEngine(operator)
        assert engine.astype(np.float64) is engine
        demoted = engine.astype(np.float32)
        assert demoted.dtype == np.float32
        np.testing.assert_allclose(demoted.to_dense(), operator.toarray(),
                                   rtol=1e-6)

    def test_sparse_tensor_is_engine(self, operator):
        # Back-compat: the historical autograd-level name is the engine.
        assert isinstance(SparseTensor(operator), PropagationEngine)


class TestProducts:
    def test_forward_matches_scipy(self, operator, rng):
        dense = rng.normal(size=(5, 3))
        engine = PropagationEngine(operator)
        np.testing.assert_allclose(engine.forward(dense), operator @ dense)

    def test_transpose_cached(self, operator):
        engine = PropagationEngine(operator)
        first = engine.transpose_matrix()
        assert engine.transpose_matrix() is first
        np.testing.assert_allclose(first.toarray(), operator.toarray().T)

    def test_backward_matches_scipy(self, operator, rng):
        grad = rng.normal(size=(7, 3))
        engine = PropagationEngine(operator)
        np.testing.assert_allclose(engine.backward(grad), operator.T @ grad)

    def test_out_buffer_reused(self, operator, rng):
        dense = rng.normal(size=(5, 3))
        engine = PropagationEngine(operator)
        out = np.empty((7, 3), dtype=np.float64)
        returned = engine.forward(dense, out=out)
        assert returned is out
        np.testing.assert_allclose(out, operator @ dense)

    def test_scratch_buffer_identity(self, operator, rng):
        dense = rng.normal(size=(5, 3))
        engine = PropagationEngine(operator)
        first = engine.forward(dense, out="scratch")
        second = engine.forward(dense, out="scratch")
        assert first is second  # same reused buffer
        np.testing.assert_allclose(second, operator @ dense)

    def test_bad_out_shape_rejected(self, operator, rng):
        engine = PropagationEngine(operator)
        with pytest.raises(ValueError):
            engine.forward(rng.normal(size=(5, 3)), out=np.empty((3, 3)))

    def test_float32_products(self, operator, rng):
        dense = rng.normal(size=(5, 3))
        engine = PropagationEngine(operator, dtype=np.float32)
        result = engine.forward(dense)
        assert result.dtype == np.float32
        np.testing.assert_allclose(result, operator @ dense, rtol=1e-5)


class TestAutograd:
    def test_apply_matches_sparse_matmul(self, operator, rng):
        engine = PropagationEngine(operator)
        dense = Tensor(rng.normal(size=(5, 2)))
        np.testing.assert_allclose(engine.apply(dense).data,
                                   sparse_matmul(operator, dense).data)

    def test_apply_gradient(self, operator, rng):
        engine = PropagationEngine(operator)
        check_gradient(lambda t: (engine.apply(t) ** 2).sum(),
                       rng.normal(size=(5, 2)))

    def test_apply_allocates_fresh_output(self, operator, rng):
        # Autograd outputs must never alias the scratch buffer.
        engine = PropagationEngine(operator)
        dense = Tensor(rng.normal(size=(5, 2)))
        first = engine.apply(dense)
        second = engine.apply(dense)
        assert first.data is not second.data

    def test_callable_alias(self, operator, rng):
        engine = PropagationEngine(operator)
        dense = Tensor(rng.normal(size=(5, 2)))
        np.testing.assert_allclose(engine(dense).data, engine.apply(dense).data)
