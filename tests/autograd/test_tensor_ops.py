"""Unit tests for the Tensor class: forward values and backward gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad

from ..helpers import check_gradient


class TestBasicProperties:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert t.dtype == np.float64

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_gradient_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        loss = (t * 3.0 + t * 4.0).sum()
        loss.backward()
        assert t.grad == pytest.approx([7.0])

    def test_backward_twice_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        assert t.grad == pytest.approx([4.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), rng.normal(size=(3, 4)))

    def test_add_broadcast(self, rng):
        other = Tensor(rng.normal(size=(1, 4)))
        check_gradient(lambda t: (t + other).sum(), rng.normal(size=(3, 4)))

    def test_sub(self, rng):
        check_gradient(lambda t: (t - 1.5).sum(), rng.normal(size=(2, 3)))

    def test_rsub(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), rng.normal(size=(4,)))

    def test_mul(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: (t * other).sum(), rng.normal(size=(3, 4)))

    def test_div(self, rng):
        other = Tensor(rng.uniform(1.0, 2.0, size=(3, 4)))
        check_gradient(lambda t: (t / other).sum(), rng.normal(size=(3, 4)))

    def test_rdiv(self, rng):
        check_gradient(lambda t: (2.0 / t).sum(), rng.uniform(0.5, 2.0, size=(5,)))

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), rng.normal(size=(3,)))

    def test_pow(self, rng):
        check_gradient(lambda t: (t ** 3).sum(), rng.uniform(0.5, 2.0, size=(4,)))

    def test_pow_with_tensor_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_both_operands_receive_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad == pytest.approx([3.0])
        assert b.grad == pytest.approx([2.0])


class TestMatmulGradients:
    def test_matmul(self, rng):
        other = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda t: (t @ other).sum(), rng.normal(size=(3, 4)))

    def test_matmul_right_operand(self, rng):
        left = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), rng.normal(size=(4, 5)))

    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0], [6.0]])
        np.testing.assert_allclose((a @ b).data, [[17.0], [39.0]])

    def test_transpose(self, rng):
        check_gradient(lambda t: (t.transpose() * 2.0).sum(), rng.normal(size=(3, 4)))

    def test_t_property(self, rng):
        value = rng.normal(size=(2, 3))
        np.testing.assert_allclose(Tensor(value).T.data, value.T)

    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), rng.normal(size=(2, 3)))


class TestReductionGradients:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_gradient(lambda t: t.mean(), rng.normal(size=(4, 5)))

    def test_mean_axis(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_norm(self, rng):
        check_gradient(lambda t: t.norm(axis=1).sum(), rng.normal(size=(3, 4)))


class TestNonlinearityGradients:
    def test_exp(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.normal(size=(3, 3)))

    def test_log(self, rng):
        check_gradient(lambda t: t.log().sum(), rng.uniform(0.5, 3.0, size=(3, 3)))

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.normal(size=(3, 3)))

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.normal(size=(3, 3)))

    def test_relu(self, rng):
        # Keep values away from zero where ReLU is non-differentiable.
        values = rng.normal(size=(3, 3))
        values[np.abs(values) < 0.1] = 0.5
        check_gradient(lambda t: t.relu().sum(), values)

    def test_leaky_relu(self, rng):
        values = rng.normal(size=(3, 3))
        values[np.abs(values) < 0.1] = 0.5
        check_gradient(lambda t: t.leaky_relu(0.2).sum(), values)

    def test_softplus(self, rng):
        check_gradient(lambda t: t.softplus().sum(), rng.normal(size=(3, 3)))

    def test_softplus_is_stable_for_large_inputs(self):
        out = Tensor([800.0]).softplus()
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(800.0)

    def test_clip(self, rng):
        values = rng.normal(size=(4, 4)) * 3
        values[np.abs(np.abs(values) - 1.0) < 0.1] += 0.3
        check_gradient(lambda t: t.clip(-1.0, 1.0).sum(), values)

    def test_sigmoid_values(self):
        np.testing.assert_allclose(Tensor([0.0]).sigmoid().data, [0.5])


class TestIndexingGradients:
    def test_getitem_row(self, rng):
        check_gradient(lambda t: (t[1] ** 2).sum(), rng.normal(size=(4, 3)))

    def test_gather_rows(self, rng):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.gather_rows(indices) ** 2).sum(), rng.normal(size=(4, 3)))

    def test_gather_rows_repeated_index_accumulates(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        gathered = t.gather_rows(np.array([1, 1, 1]))
        gathered.sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 0.0], [3.0, 3.0], [0.0, 0.0]])

    def test_comparisons_return_arrays(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert (t > 1.5).tolist() == [False, True, True]
        assert (t <= 2.0).tolist() == [True, True, False]
