"""Tests for the functional ops used by the recommendation models."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.functional import (
    concat,
    dropout,
    embedding_l2,
    l2_normalize,
    log_softmax,
    logsigmoid,
    mse,
    row_cosine_similarity,
    scale_rows,
    softmax,
    stack,
)

from ..helpers import check_gradient


class TestConcatStack:
    def test_concat_axis0_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = concat([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=0))

    def test_concat_axis1_gradient(self, rng):
        other = Tensor(rng.normal(size=(3, 2)))
        check_gradient(lambda t: (concat([t, other], axis=1) ** 2).sum(),
                       rng.normal(size=(3, 4)))

    def test_concat_routes_gradients_to_all_inputs(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_values_and_gradient(self, rng):
        other = Tensor(rng.normal(size=(3,)))
        check_gradient(lambda t: (stack([t, other], axis=0) ** 2).sum(), rng.normal(size=(3,)))


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(5, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_softmax_gradient(self, rng):
        check_gradient(lambda t: (softmax(t, axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        values = rng.normal(size=(4, 6))
        np.testing.assert_allclose(log_softmax(Tensor(values)).data,
                                   np.log(softmax(Tensor(values)).data), atol=1e-10)

    def test_log_softmax_stable_for_large_logits(self):
        out = log_softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()

    def test_logsigmoid_matches_reference(self, rng):
        values = rng.normal(size=(10,))
        np.testing.assert_allclose(logsigmoid(Tensor(values)).data,
                                   np.log(1.0 / (1.0 + np.exp(-values))), atol=1e-10)

    def test_logsigmoid_gradient(self, rng):
        check_gradient(lambda t: logsigmoid(t).sum(), rng.normal(size=(5,)))


class TestCosineSimilarity:
    def test_identical_rows_have_similarity_one(self, rng):
        values = rng.normal(size=(4, 8))
        sims = row_cosine_similarity(Tensor(values), Tensor(values))
        np.testing.assert_allclose(sims.data.ravel(), np.ones(4), atol=1e-8)

    def test_opposite_rows_have_similarity_minus_one(self, rng):
        values = rng.normal(size=(4, 8))
        sims = row_cosine_similarity(Tensor(values), Tensor(-values))
        np.testing.assert_allclose(sims.data.ravel(), -np.ones(4), atol=1e-8)

    def test_orthogonal_rows_have_similarity_zero(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[0.0, 1.0]])
        assert row_cosine_similarity(a, b).data.ravel()[0] == pytest.approx(0.0)

    def test_output_shape_is_column(self, rng):
        sims = row_cosine_similarity(Tensor(rng.normal(size=(6, 3))),
                                     Tensor(rng.normal(size=(6, 3))))
        assert sims.shape == (6, 1)

    def test_zero_row_does_not_nan(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.ones((2, 3)))
        assert np.isfinite(row_cosine_similarity(a, b).data).all()

    def test_gradient_flows_through_current_layer(self, rng):
        ego = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: row_cosine_similarity(t, ego).sum(),
                       rng.normal(size=(3, 4)), rtol=5e-3, atol=1e-5)


class TestRowScalingAndNorms:
    def test_scale_rows_with_column_vector(self, rng):
        values = rng.normal(size=(4, 3))
        weights = rng.normal(size=(4, 1))
        out = scale_rows(Tensor(values), Tensor(weights))
        np.testing.assert_allclose(out.data, values * weights)

    def test_scale_rows_with_flat_vector(self, rng):
        values = rng.normal(size=(4, 3))
        weights = rng.normal(size=(4,))
        out = scale_rows(Tensor(values), Tensor(weights))
        np.testing.assert_allclose(out.data, values * weights[:, None])

    def test_l2_normalize_gives_unit_rows(self, rng):
        out = l2_normalize(Tensor(rng.normal(size=(5, 6))), axis=1)
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(5), atol=1e-8)

    def test_embedding_l2_value(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[2.0, 0.0]])
        assert embedding_l2(a, b).item() == pytest.approx(0.5 * (1 + 4 + 4))

    def test_embedding_l2_requires_input(self):
        with pytest.raises(ValueError):
            embedding_l2()

    def test_mse_value(self):
        assert mse(Tensor([1.0, 2.0]), Tensor([1.0, 4.0])).item() == pytest.approx(2.0)


class TestDropout:
    def test_dropout_disabled_in_eval(self, rng):
        t = Tensor(rng.normal(size=(10, 10)))
        out = dropout(t, 0.5, rng=np.random.default_rng(0), training=False)
        assert out is t

    def test_dropout_zero_rate_is_identity(self, rng):
        t = Tensor(rng.normal(size=(10, 10)))
        assert dropout(t, 0.0, training=True) is t

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor(rng.normal(size=(3, 3)), requires_grad=True), 1.0, training=True)

    def test_dropout_preserves_expectation(self):
        t = Tensor(np.ones((200, 200)), requires_grad=True)
        out = dropout(t, 0.4, rng=np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_zeroes_roughly_rate_fraction(self):
        t = Tensor(np.ones((200, 200)), requires_grad=True)
        out = dropout(t, 0.3, rng=np.random.default_rng(1), training=True)
        zero_fraction = float((out.data == 0).mean())
        assert zero_fraction == pytest.approx(0.3, abs=0.03)
