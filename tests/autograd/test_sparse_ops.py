"""Tests for the sparse-dense propagation product."""

import numpy as np
import scipy.sparse as sp

from repro.autograd import SparseTensor, Tensor, sparse_matmul

from ..helpers import check_gradient


class TestSparseTensor:
    def test_from_dense_array(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        st = SparseTensor(dense)
        assert st.shape == (2, 2)
        assert st.nnz == 2
        np.testing.assert_allclose(st.to_dense(), dense)

    def test_from_scipy_matrix(self):
        matrix = sp.random(10, 10, density=0.2, random_state=0, format="coo")
        st = SparseTensor(matrix)
        np.testing.assert_allclose(st.to_dense(), matrix.toarray())

    def test_transpose_cached(self):
        st = SparseTensor(sp.random(5, 5, density=0.3, random_state=1))
        first = st.transpose_matrix()
        second = st.transpose_matrix()
        assert first is second

    def test_repr(self):
        assert "SparseTensor" in repr(SparseTensor(np.eye(3)))


class TestSparseMatmul:
    def test_matches_dense_product(self, rng):
        adjacency = sp.random(6, 6, density=0.4, random_state=2, format="csr")
        dense = rng.normal(size=(6, 4))
        out = sparse_matmul(SparseTensor(adjacency), Tensor(dense))
        np.testing.assert_allclose(out.data, adjacency.toarray() @ dense)

    def test_accepts_raw_scipy_matrix(self, rng):
        adjacency = sp.eye(4, format="csr")
        dense = rng.normal(size=(4, 3))
        out = sparse_matmul(adjacency, Tensor(dense))
        np.testing.assert_allclose(out.data, dense)

    def test_gradient_matches_finite_differences(self, rng):
        adjacency = SparseTensor(sp.random(5, 5, density=0.5, random_state=3, format="csr"))
        check_gradient(lambda t: (sparse_matmul(adjacency, t) ** 2).sum(),
                       rng.normal(size=(5, 3)))

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(4, 4, density=0.6, random_state=4, format="csr")
        dense = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = sparse_matmul(SparseTensor(matrix), dense)
        out.sum().backward()
        expected = matrix.toarray().T @ np.ones((4, 2))
        np.testing.assert_allclose(dense.grad, expected)

    def test_rectangular_operator(self, rng):
        matrix = sp.random(3, 7, density=0.5, random_state=5, format="csr")
        dense = Tensor(rng.normal(size=(7, 2)), requires_grad=True)
        out = sparse_matmul(SparseTensor(matrix), dense)
        assert out.shape == (3, 2)
        out.sum().backward()
        assert dense.grad.shape == (7, 2)

    def test_no_gradient_when_input_detached(self, rng):
        adjacency = SparseTensor(sp.eye(3, format="csr"))
        out = sparse_matmul(adjacency, Tensor(rng.normal(size=(3, 2))))
        assert not out.requires_grad
