"""Tests for Module/Parameter bookkeeping, initialisers and optimisers."""

import numpy as np
import pytest

from repro.autograd import Adam, Module, Parameter, SGD, Tensor, init


class _TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.bias = Parameter(np.zeros(2))

    def forward(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias


class _Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = _TinyModel()
        self.scale = Parameter(np.ones(1))


class TestModule:
    def test_parameters_discovered(self):
        model = _TinyModel()
        names = dict(model.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_parameters_discovered(self):
        model = _Nested()
        names = dict(model.named_parameters())
        assert set(names) == {"scale", "inner.weight", "inner.bias"}

    def test_num_parameters(self):
        assert _TinyModel().num_parameters() == 6

    def test_train_eval_mode_propagates(self):
        model = _Nested()
        model.eval()
        assert not model.training and not model.inner.training
        model.train()
        assert model.training and model.inner.training

    def test_zero_grad(self):
        model = _TinyModel()
        out = model(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_round_trip(self):
        model = _Nested()
        state = model.state_dict()
        state["inner.weight"] = state["inner.weight"] + 5.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.inner.weight.data, np.ones((2, 2)) + 5.0)

    def test_load_state_dict_rejects_missing_keys(self):
        model = _TinyModel()
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.ones((2, 2))})

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = _TinyModel()
        state = model.state_dict()
        state["bias"] = np.zeros(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        values = init.xavier_uniform((100, 50), rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert values.min() >= -bound and values.max() <= bound

    def test_xavier_normal_std(self, rng):
        values = init.xavier_normal((500, 500), rng=rng)
        assert values.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_normal(self, rng):
        values = init.normal((1000,), mean=1.0, std=0.5, rng=rng)
        assert values.mean() == pytest.approx(1.0, abs=0.1)

    def test_zeros_and_ones(self):
        assert init.zeros((3, 2)).sum() == 0
        assert init.ones((3, 2)).sum() == 6

    def test_scalar_shape_rejected(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())


def _quadratic_loss(param: Parameter) -> Tensor:
    # Simple convex objective: ||p - 3||^2
    diff = param - 3.0
    return (diff * diff).sum()


class TestOptimizers:
    def test_sgd_decreases_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = _quadratic_loss(param)
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-3)

    def test_sgd_momentum_converges(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_adam_converges(self):
        param = Parameter(np.zeros(4))
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.full(3, 10.0))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        opt = Adam([param], lr=0.1)
        opt.step()  # no gradient accumulated yet
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=-1.0)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.1, betas=(1.5, 0.9))
