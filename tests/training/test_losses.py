"""Tests for the loss functions."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.training import bce_loss, bpr_loss, l2_regularization, multinomial_nll, weighted_mse_loss

from ..helpers import check_gradient


class TestBprLoss:
    def test_value_matches_formula(self):
        pos = Tensor([2.0, 1.0])
        neg = Tensor([1.0, 1.0])
        expected = -np.mean(np.log(1.0 / (1.0 + np.exp(-np.array([1.0, 0.0])))))
        assert bpr_loss(pos, neg).item() == pytest.approx(expected)

    def test_perfect_separation_gives_small_loss(self):
        loss = bpr_loss(Tensor([20.0]), Tensor([-20.0]))
        assert loss.item() < 1e-6

    def test_reversed_ranking_gives_large_loss(self):
        loss = bpr_loss(Tensor([-20.0]), Tensor([20.0]))
        assert loss.item() > 10.0

    def test_gradient_pushes_scores_apart(self, rng):
        check_gradient(lambda t: bpr_loss(t, Tensor(np.zeros(4))), rng.normal(size=(4,)))

    def test_symmetric_scores_give_log2(self):
        loss = bpr_loss(Tensor([0.0]), Tensor([0.0]))
        assert loss.item() == pytest.approx(np.log(2.0))


class TestL2Regularization:
    def test_value(self):
        loss = l2_regularization(Tensor([1.0, 2.0]), Tensor([3.0]), coefficient=0.5)
        assert loss.item() == pytest.approx(0.5 * (1 + 4 + 9))

    def test_normalize_by_batch(self):
        loss = l2_regularization(Tensor([2.0, 2.0]), coefficient=1.0, normalize_by=2)
        assert loss.item() == pytest.approx(4.0)

    def test_requires_tensors(self):
        with pytest.raises(ValueError):
            l2_regularization(coefficient=0.1)

    def test_gradient(self, rng):
        check_gradient(lambda t: l2_regularization(t, coefficient=0.3), rng.normal(size=(3, 2)))


class TestBceLoss:
    def test_confident_correct_predictions_give_small_loss(self):
        scores = Tensor([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        assert bce_loss(scores, labels).item() < 1e-3

    def test_confident_wrong_predictions_give_large_loss(self):
        scores = Tensor([-10.0, 10.0])
        labels = np.array([1.0, 0.0])
        assert bce_loss(scores, labels).item() > 5.0

    def test_weighted_variant(self):
        scores = Tensor([0.0, 0.0])
        labels = np.array([1.0, 1.0])
        unweighted = bce_loss(scores, labels).item()
        weighted = bce_loss(scores, labels, weights=np.array([2.0, 2.0])).item()
        assert weighted == pytest.approx(2 * unweighted)

    def test_gradient(self, rng):
        labels = (rng.random(5) > 0.5).astype(float)
        check_gradient(lambda t: bce_loss(t, labels), rng.normal(size=(5,)))


class TestMultinomialNLL:
    def test_uniform_logits_value(self):
        logits = Tensor(np.zeros((2, 4)))
        targets = np.array([[1.0, 0, 0, 0], [1.0, 1.0, 0, 0]])
        # log-softmax of uniform logits is -log(4) everywhere.
        expected = (np.log(4.0) * 1 + np.log(4.0) * 2) / 2
        assert multinomial_nll(logits, targets).item() == pytest.approx(expected)

    def test_concentrating_mass_on_targets_reduces_loss(self):
        targets = np.array([[1.0, 0.0, 0.0]])
        flat = multinomial_nll(Tensor(np.zeros((1, 3))), targets).item()
        peaked = multinomial_nll(Tensor(np.array([[5.0, 0.0, 0.0]])), targets).item()
        assert peaked < flat

    def test_gradient(self, rng):
        targets = (rng.random((3, 6)) > 0.6).astype(float)
        check_gradient(lambda t: multinomial_nll(t, targets), rng.normal(size=(3, 6)))


class TestWeightedMse:
    def test_positive_entries_weighted_higher(self):
        targets = np.array([[1.0, 0.0]])
        predictions = Tensor(np.array([[0.0, 1.0]]))
        loss = weighted_mse_loss(predictions, targets, positive_weight=1.0, negative_weight=0.1)
        # error on positive weighs 1.0, error on negative weighs 0.1
        assert loss.item() == pytest.approx((1.0 * 1.0 + 0.1 * 1.0) / 2)

    def test_zero_loss_on_exact_reconstruction(self):
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert weighted_mse_loss(Tensor(targets.copy()), targets).item() == 0.0

    def test_gradient(self, rng):
        targets = (rng.random((2, 4)) > 0.5).astype(float)
        check_gradient(lambda t: weighted_mse_loss(t, targets), rng.normal(size=(2, 4)))
