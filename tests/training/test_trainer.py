"""Tests for the Trainer, TrainerConfig and callbacks."""

import numpy as np
import pytest

from repro.models import BprMF, build_model
from repro.training import (
    LayerSimilarityRecorder,
    LayerWeightRecorder,
    LossRecorder,
    Trainer,
    TrainerConfig,
)


class TestTrainerBasics:
    def test_training_reduces_loss(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=16, seed=0)
        config = TrainerConfig(epochs=10, learning_rate=0.01, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_history_records_every_epoch(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=4, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run == 4
        assert len(history.batch_losses) == 4
        assert all(len(batch) > 0 for batch in history.batch_losses)

    def test_validation_scores_recorded(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=3, eval_every=1, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {1, 2, 3}
        assert history.best_epoch in {1, 2, 3}

    def test_eval_every_skips_epochs(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=4, eval_every=2, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {2, 4}

    def test_early_stopping_halts_training(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=100, learning_rate=1e-6, early_stopping_patience=2)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run < 100
        assert history.stopped_early

    def test_restore_best_reinstates_best_weights(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=6, early_stopping_patience=0, restore_best=True)
        trainer = Trainer(model, tiny_split, config)
        history = trainer.fit()
        # After fit() the model must be in eval mode and usable for scoring.
        assert not model.training
        assert history.best_epoch >= 1

    def test_model_set_to_eval_after_fit(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=1)).fit()
        assert not model.training

    def test_epoch_loss_sum_helper(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        history = Trainer(model, tiny_split, TrainerConfig(epochs=1)).fit()
        assert history.epoch_loss_sum(0) == pytest.approx(np.sum(history.batch_losses[0]))


class TestTrainerConfigValidation:
    def test_unknown_optimizer_rejected(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split, TrainerConfig(optimizer="rmsprop"))

    def test_sgd_optimizer_supported(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        history = Trainer(model, tiny_split, TrainerConfig(optimizer="sgd", epochs=1)).fit()
        assert history.num_epochs_run == 1

    def test_malformed_validation_metric_rejected(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split, TrainerConfig(validation_metric="recall"))

    def test_ndcg_validation_metric(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        config = TrainerConfig(epochs=1, validation_metric="ndcg@10")
        history = Trainer(model, tiny_split, config).fit()
        assert 1 in history.validation_scores


class TestCallbacks:
    def test_callbacks_called_every_epoch(self, tiny_split):
        calls = []
        model = BprMF(tiny_split, embedding_dim=8)
        config = TrainerConfig(epochs=3, early_stopping_patience=0)
        Trainer(model, tiny_split, config,
                callbacks=[lambda epoch, m, h: calls.append(epoch)]).fit()
        assert calls == [1, 2, 3]

    def test_loss_recorder(self, tiny_split):
        recorder = LossRecorder()
        model = BprMF(tiny_split, embedding_dim=8)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        assert len(recorder.epoch_loss_sums) == 2
        assert list(recorder.as_dict()) == [1, 2]

    def test_layer_weight_recorder_with_learnable_lightgcn(self, tiny_split):
        recorder = LayerWeightRecorder()
        model = build_model("lightgcn-learnable", tiny_split, embedding_dim=8, num_layers=2)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        trajectory = recorder.as_array()
        assert trajectory.shape == (2, 3)
        np.testing.assert_allclose(trajectory.sum(axis=1), np.ones(2), atol=1e-8)

    def test_layer_weight_recorder_ignores_models_without_weights(self, tiny_split):
        recorder = LayerWeightRecorder()
        model = BprMF(tiny_split, embedding_dim=8)
        Trainer(model, tiny_split, TrainerConfig(epochs=1), callbacks=[recorder]).fit()
        assert recorder.as_array().size == 0

    def test_layer_similarity_recorder_with_layergcn(self, tiny_split):
        recorder = LayerSimilarityRecorder()
        model = build_model("layergcn", tiny_split, embedding_dim=8, num_layers=3,
                            dropout_ratio=0.1)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        trajectory = recorder.as_array()
        assert trajectory.shape == (2, 3)
