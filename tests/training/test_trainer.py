"""Tests for the Trainer, TrainerConfig and callbacks."""

import numpy as np
import pytest

from repro.models import BprMF, MultiVAE, build_model
from repro.training import (
    LayerSimilarityRecorder,
    LayerWeightRecorder,
    LossRecorder,
    Trainer,
    TrainerConfig,
)


class TestTrainerBasics:
    def test_training_reduces_loss(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=16, seed=0)
        config = TrainerConfig(epochs=10, learning_rate=0.01, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_history_records_every_epoch(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=4, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run == 4
        assert len(history.batch_losses) == 4
        assert all(len(batch) > 0 for batch in history.batch_losses)

    def test_validation_scores_recorded(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=3, eval_every=1, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {1, 2, 3}
        assert history.best_epoch in {1, 2, 3}

    def test_eval_every_skips_epochs(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=4, eval_every=2, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {2, 4}

    def test_final_epoch_evaluated_when_off_cadence(self, tiny_split):
        # epochs % eval_every != 0: the last trained epoch must still be
        # validated (before best-weight restore) so best_epoch accounting
        # sees every epoch that was actually trained.
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=5, eval_every=2, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {2, 4, 5}
        assert history.best_epoch in {2, 4, 5}

    def test_final_epoch_eval_can_win_best(self, tiny_split):
        # With eval_every larger than the epoch budget, the only validation
        # point is the final one added by the post-loop check.
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=3, eval_every=10, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert set(history.validation_scores) == {3}
        assert history.best_epoch == 3
        assert history.best_score == history.validation_scores[3]

    def test_early_stopping_halts_training(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=100, learning_rate=1e-6, early_stopping_patience=2)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run < 100
        assert history.stopped_early

    def test_restore_best_reinstates_best_weights(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=6, early_stopping_patience=0, restore_best=True)
        trainer = Trainer(model, tiny_split, config)
        history = trainer.fit()
        # After fit() the model must be in eval mode and usable for scoring.
        assert not model.training
        assert history.best_epoch >= 1

    def test_model_set_to_eval_after_fit(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=1)).fit()
        assert not model.training

    def test_epoch_loss_sum_helper(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        history = Trainer(model, tiny_split, TrainerConfig(epochs=1)).fit()
        assert history.epoch_loss_sum(0) == pytest.approx(np.sum(history.batch_losses[0]))


class TestTrainerConfigValidation:
    def test_unknown_optimizer_rejected(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split, TrainerConfig(optimizer="rmsprop"))

    def test_sgd_optimizer_supported(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        history = Trainer(model, tiny_split, TrainerConfig(optimizer="sgd", epochs=1)).fit()
        assert history.num_epochs_run == 1

    def test_malformed_validation_metric_rejected(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split, TrainerConfig(validation_metric="recall"))

    def test_ndcg_validation_metric(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8)
        config = TrainerConfig(epochs=1, validation_metric="ndcg@10")
        history = Trainer(model, tiny_split, config).fit()
        assert 1 in history.validation_scores


class TestConfigBatchingOverrides:
    def test_batch_size_override_reaches_pipeline(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, batch_size=1024, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=1, batch_size=16))
        assert model.batch_size == 16
        assert model.batch_spec().batch_size == 16
        users, _, _ = next(iter(model.make_batches()))
        assert users.size <= 16

    def test_num_negatives_override_reaches_spec(self, tiny_split):
        model = build_model("ultragcn", tiny_split, embedding_dim=8, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=1, num_negatives=3))
        assert model.batch_spec().num_negatives == 3
        users, _, negatives = next(iter(model.make_batches()))
        assert negatives.shape == (users.size, 3)

    def test_num_negatives_override_works_for_pairwise_models(self, tiny_split):
        # The generic override must not break 1-d pairwise train_steps: the
        # BPR pipeline flattens (B, n) draws into n aligned triples.
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=1, num_negatives=2, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run == 1
        assert all(np.isfinite(loss) for loss in history.batch_losses[0])

    def test_no_override_keeps_model_defaults(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, batch_size=128, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=1))
        assert model.batch_size == 128

    def test_invalid_override_rejected(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        with pytest.raises(ValueError):
            model.configure_batching(batch_size=0)
        with pytest.raises(ValueError):
            model.configure_batching(num_negatives=-1)


class TestSeededDeterminism:
    """Same TrainerConfig + seed ⇒ identical batch losses, run to run."""

    def test_bpr_model_batch_losses_reproducible(self, tiny_split):
        config = TrainerConfig(epochs=3, early_stopping_patience=0)
        runs = []
        for _ in range(2):
            model = BprMF(tiny_split, embedding_dim=8, seed=42)
            runs.append(Trainer(model, tiny_split, config).fit())
        assert runs[0].batch_losses == runs[1].batch_losses
        assert runs[0].validation_scores == runs[1].validation_scores

    def test_user_row_model_batch_losses_reproducible(self, tiny_split):
        config = TrainerConfig(epochs=2, early_stopping_patience=0)
        runs = []
        for _ in range(2):
            model = MultiVAE(tiny_split, embedding_dim=8, batch_size=16, seed=7)
            runs.append(Trainer(model, tiny_split, config).fit())
        assert runs[0].batch_losses == runs[1].batch_losses

    def test_different_seeds_diverge(self, tiny_split):
        config = TrainerConfig(epochs=1, early_stopping_patience=0)
        first = Trainer(BprMF(tiny_split, embedding_dim=8, seed=0),
                        tiny_split, config).fit()
        second = Trainer(BprMF(tiny_split, embedding_dim=8, seed=1),
                         tiny_split, config).fit()
        assert first.batch_losses != second.batch_losses


class TestCallbacks:
    def test_callbacks_called_every_epoch(self, tiny_split):
        calls = []
        model = BprMF(tiny_split, embedding_dim=8)
        config = TrainerConfig(epochs=3, early_stopping_patience=0)
        Trainer(model, tiny_split, config,
                callbacks=[lambda epoch, m, h: calls.append(epoch)]).fit()
        assert calls == [1, 2, 3]

    def test_loss_recorder(self, tiny_split):
        recorder = LossRecorder()
        model = BprMF(tiny_split, embedding_dim=8)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        assert len(recorder.epoch_loss_sums) == 2
        assert list(recorder.as_dict()) == [1, 2]

    def test_layer_weight_recorder_with_learnable_lightgcn(self, tiny_split):
        recorder = LayerWeightRecorder()
        model = build_model("lightgcn-learnable", tiny_split, embedding_dim=8, num_layers=2)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        trajectory = recorder.as_array()
        assert trajectory.shape == (2, 3)
        np.testing.assert_allclose(trajectory.sum(axis=1), np.ones(2), atol=1e-8)

    def test_layer_weight_recorder_ignores_models_without_weights(self, tiny_split):
        recorder = LayerWeightRecorder()
        model = BprMF(tiny_split, embedding_dim=8)
        Trainer(model, tiny_split, TrainerConfig(epochs=1), callbacks=[recorder]).fit()
        assert recorder.as_array().size == 0

    def test_layer_similarity_recorder_with_layergcn(self, tiny_split):
        recorder = LayerSimilarityRecorder()
        model = build_model("layergcn", tiny_split, embedding_dim=8, num_layers=3,
                            dropout_ratio=0.1)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0),
                callbacks=[recorder]).fit()
        trajectory = recorder.as_array()
        assert trajectory.shape == (2, 3)
