"""Tests for the edge-dropout samplers (DropEdge, DegreeDrop, Mixed)."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph, DegreeDrop, DropEdge, MixedDrop, build_edge_dropout


@pytest.fixture()
def skewed_graph() -> BipartiteGraph:
    """Graph with one very popular item (item 0) and several rare items."""
    rng = np.random.default_rng(0)
    users = []
    items = []
    for user in range(40):
        users.append(user)
        items.append(0)            # every user interacts with the hub item
        users.append(user)
        items.append(1 + user % 10)  # plus one long-tail item
    return BipartiteGraph(40, 11, users, items)


class TestEdgeDropoutBase:
    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            DropEdge(dropout_ratio=1.0)
        with pytest.raises(ValueError):
            DropEdge(dropout_ratio=-0.1)

    def test_zero_ratio_keeps_all_edges(self, skewed_graph):
        sampler = DropEdge(dropout_ratio=0.0)
        kept = sampler.sample_edges(skewed_graph)
        assert kept.size == skewed_graph.num_edges

    def test_num_kept_rounding(self):
        sampler = DropEdge(dropout_ratio=0.25)
        assert sampler.num_kept(100) == 75
        assert sampler.num_kept(0) == 0
        assert sampler.num_kept(1) == 1

    def test_sample_size_matches_ratio(self, skewed_graph):
        sampler = DropEdge(dropout_ratio=0.3, rng=np.random.default_rng(1))
        kept = sampler.sample_edges(skewed_graph)
        assert kept.size == sampler.num_kept(skewed_graph.num_edges)

    def test_sampled_indices_unique_and_in_range(self, skewed_graph):
        sampler = DegreeDrop(dropout_ratio=0.5, rng=np.random.default_rng(2))
        kept = sampler.sample_edges(skewed_graph)
        assert len(set(kept.tolist())) == kept.size
        assert kept.min() >= 0 and kept.max() < skewed_graph.num_edges

    def test_callable_interface(self, skewed_graph):
        sampler = DropEdge(dropout_ratio=0.2, rng=np.random.default_rng(3))
        assert sampler(skewed_graph).size == sampler.num_kept(skewed_graph.num_edges)

    def test_empty_graph(self):
        graph = BipartiteGraph.from_pairs([], num_users=3, num_items=3)
        assert DropEdge(dropout_ratio=0.5).sample_edges(graph).size == 0

    def test_repr(self):
        assert "0.3" in repr(DegreeDrop(dropout_ratio=0.3))


class TestDegreeDrop:
    def test_keep_probabilities_follow_eq5(self, skewed_graph):
        sampler = DegreeDrop(dropout_ratio=0.5)
        probs = sampler.keep_probabilities(skewed_graph)
        user_deg = skewed_graph.user_degrees()[skewed_graph.user_indices]
        item_deg = skewed_graph.item_degrees()[skewed_graph.item_indices]
        expected = 1.0 / (np.sqrt(user_deg) * np.sqrt(item_deg))
        np.testing.assert_allclose(probs, expected)

    def test_hub_edges_dropped_preferentially(self, skewed_graph):
        """Edges into the hub item (degree 40) should be kept less often than tail edges."""
        sampler = DegreeDrop(dropout_ratio=0.5, rng=np.random.default_rng(0))
        hub_kept = 0
        tail_kept = 0
        for _ in range(30):
            kept = sampler.sample_edges(skewed_graph)
            kept_items = skewed_graph.item_indices[kept]
            hub_kept += int((kept_items == 0).sum())
            tail_kept += int((kept_items != 0).sum())
        # Equal numbers of hub and tail edges exist, so under uniform pruning
        # the two counts would be statistically equal; DegreeDrop must keep
        # clearly fewer hub edges.
        assert hub_kept < tail_kept * 0.8

    def test_uniform_dropedge_keeps_hub_and_tail_equally(self, skewed_graph):
        sampler = DropEdge(dropout_ratio=0.5, rng=np.random.default_rng(0))
        hub_kept = 0
        tail_kept = 0
        for _ in range(30):
            kept = sampler.sample_edges(skewed_graph)
            kept_items = skewed_graph.item_indices[kept]
            hub_kept += int((kept_items == 0).sum())
            tail_kept += int((kept_items != 0).sum())
        assert hub_kept == pytest.approx(tail_kept, rel=0.1)


class TestMixedDrop:
    def test_alternates_between_strategies(self, skewed_graph):
        sampler = MixedDrop(dropout_ratio=0.5, rng=np.random.default_rng(0))
        even = sampler.sample_edges(skewed_graph, epoch=0)
        odd = sampler.sample_edges(skewed_graph, epoch=1)
        assert even.size == odd.size
        # Even epochs (DegreeDrop) keep fewer hub edges than odd epochs (uniform).
        even_hub = int((skewed_graph.item_indices[even] == 0).sum())
        odd_hub = int((skewed_graph.item_indices[odd] == 0).sum())
        assert even_hub <= odd_hub + 5  # sampling noise allowance


class TestFactory:
    def test_build_known_kinds(self):
        assert isinstance(build_edge_dropout("dropedge", 0.1), DropEdge)
        assert isinstance(build_edge_dropout("degreedrop", 0.1), DegreeDrop)
        assert isinstance(build_edge_dropout("mixed", 0.1), MixedDrop)
        assert isinstance(build_edge_dropout("uniform", 0.1), DropEdge)
        assert isinstance(build_edge_dropout("degree", 0.1), DegreeDrop)

    def test_none_returns_none(self):
        assert build_edge_dropout("none", 0.1) is None
        assert build_edge_dropout(None, 0.1) is None
        assert build_edge_dropout("", 0.1) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            build_edge_dropout("magic", 0.1)
