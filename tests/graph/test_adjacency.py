"""Tests for adjacency normalisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    BipartiteGraph,
    add_self_loops,
    normalized_adjacency,
    propagation_matrix,
    renormalize,
    symmetric_normalize,
)


@pytest.fixture()
def graph() -> BipartiteGraph:
    users = [0, 0, 1, 2, 2, 2]
    items = [0, 1, 0, 1, 2, 3]
    return BipartiteGraph(3, 4, users, items)


class TestSymmetricNormalize:
    def test_matches_dense_formula(self, graph):
        adjacency = graph.adjacency_matrix()
        normalized = symmetric_normalize(adjacency).toarray()
        dense = adjacency.toarray()
        degrees = dense.sum(axis=1)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(degrees))
        np.testing.assert_allclose(normalized, d_inv_sqrt @ dense @ d_inv_sqrt)

    def test_spectrum_bounded_by_one(self, graph):
        # The symmetric normalised adjacency has eigenvalues in [-1, 1].
        normalized = symmetric_normalize(graph.adjacency_matrix()).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert np.all(np.abs(eigenvalues) <= 1.0 + 1e-9)

    def test_isolated_node_gives_zero_row(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0, 0.0],
                                            [1.0, 0.0, 0.0],
                                            [0.0, 0.0, 0.0]]))
        normalized = symmetric_normalize(adjacency).toarray()
        assert np.isfinite(normalized).all()
        np.testing.assert_allclose(normalized[2], 0.0)

    def test_symmetry_preserved(self, graph):
        normalized = symmetric_normalize(graph.adjacency_matrix()).toarray()
        np.testing.assert_allclose(normalized, normalized.T, atol=1e-12)


class TestSelfLoopsAndRenormalize:
    def test_add_self_loops_diagonal(self, graph):
        with_loops = add_self_loops(graph.adjacency_matrix())
        np.testing.assert_allclose(with_loops.diagonal(), np.ones(graph.num_nodes))

    def test_add_self_loops_custom_weight(self, graph):
        with_loops = add_self_loops(graph.adjacency_matrix(), weight=2.5)
        np.testing.assert_allclose(with_loops.diagonal(), np.full(graph.num_nodes, 2.5))

    def test_renormalize_has_nonzero_diagonal(self, graph):
        renorm = renormalize(graph.adjacency_matrix()).toarray()
        assert np.all(renorm.diagonal() > 0)

    def test_renormalize_rows_finite(self, graph):
        renorm = renormalize(graph.adjacency_matrix()).toarray()
        assert np.isfinite(renorm).all()


class TestGraphLevelHelpers:
    def test_normalized_adjacency_no_loops_has_zero_diag(self, graph):
        matrix = normalized_adjacency(graph, self_loops=False).toarray()
        np.testing.assert_allclose(matrix.diagonal(), 0.0)

    def test_normalized_adjacency_with_loops(self, graph):
        matrix = normalized_adjacency(graph, self_loops=True).toarray()
        assert np.all(matrix.diagonal() > 0)

    def test_propagation_matrix_full_equals_normalized(self, graph):
        full = normalized_adjacency(graph).toarray()
        via_edges = propagation_matrix(graph).toarray()
        np.testing.assert_allclose(full, via_edges)

    def test_propagation_matrix_subset_drops_edges(self, graph):
        kept = np.array([0, 1, 2])  # keep only the first three edges
        pruned = propagation_matrix(
            graph,
            user_indices=graph.user_indices[kept],
            item_indices=graph.item_indices[kept],
        )
        full = propagation_matrix(graph)
        assert pruned.nnz < full.nnz

    def test_propagation_matrix_shape(self, graph):
        assert propagation_matrix(graph).shape == (graph.num_nodes, graph.num_nodes)
