"""Tests for the bipartite user-item graph."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph


@pytest.fixture()
def small_graph() -> BipartiteGraph:
    # 3 users, 4 items, 6 interactions.
    users = [0, 0, 1, 1, 2, 2]
    items = [0, 1, 1, 2, 2, 3]
    return BipartiteGraph(3, 4, users, items)


class TestConstruction:
    def test_basic_counts(self, small_graph):
        assert small_graph.num_users == 3
        assert small_graph.num_items == 4
        assert small_graph.num_nodes == 7
        assert small_graph.num_edges == 6

    def test_sparsity(self, small_graph):
        assert small_graph.sparsity == pytest.approx(1.0 - 6 / 12)

    def test_stats_container(self, small_graph):
        stats = small_graph.stats()
        assert stats.num_interactions == 6
        assert stats.num_users == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [0, 1], [0])

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [0, 5], [0, 1])

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [0, 1], [0, 7])

    def test_from_pairs(self):
        graph = BipartiteGraph.from_pairs([(0, 1), (1, 0)])
        assert graph.num_users == 2
        assert graph.num_items == 2
        assert graph.num_edges == 2

    def test_from_pairs_empty(self):
        graph = BipartiteGraph.from_pairs([], num_users=3, num_items=2)
        assert graph.num_edges == 0
        assert graph.sparsity == 1.0

    def test_repr(self, small_graph):
        assert "BipartiteGraph" in repr(small_graph)


class TestMatrices:
    def test_interaction_matrix_shape_and_entries(self, small_graph):
        matrix = small_graph.interaction_matrix()
        assert matrix.shape == (3, 4)
        assert matrix[0, 0] == 1.0
        assert matrix[0, 3] == 0.0
        assert matrix.nnz == 6

    def test_interaction_matrix_binarizes_duplicates(self):
        graph = BipartiteGraph(1, 1, [0, 0], [0, 0])
        matrix = graph.interaction_matrix()
        assert matrix[0, 0] == 1.0

    def test_adjacency_is_symmetric(self, small_graph):
        adjacency = small_graph.adjacency_matrix()
        dense = adjacency.toarray()
        np.testing.assert_allclose(dense, dense.T)

    def test_adjacency_block_structure(self, small_graph):
        dense = small_graph.adjacency_matrix().toarray()
        # User-user and item-item blocks must be zero (bipartite, Eq. 4).
        assert dense[:3, :3].sum() == 0
        assert dense[3:, 3:].sum() == 0
        # The user-item block equals R.
        np.testing.assert_allclose(dense[:3, 3:], small_graph.interaction_matrix().toarray())

    def test_adjacency_with_edge_subset(self, small_graph):
        adjacency = small_graph.adjacency_matrix(
            user_indices=np.array([0]), item_indices=np.array([0]))
        assert adjacency.nnz == 2  # one undirected edge


class TestDegrees:
    def test_user_degrees(self, small_graph):
        np.testing.assert_allclose(small_graph.user_degrees(), [2, 2, 2])

    def test_item_degrees(self, small_graph):
        np.testing.assert_allclose(small_graph.item_degrees(), [1, 2, 2, 1])

    def test_node_degrees_concatenation(self, small_graph):
        degrees = small_graph.node_degrees()
        assert degrees.shape == (7,)
        assert degrees.sum() == 2 * small_graph.num_edges / 1  # users + items each count edges once

    def test_edge_endpoints_offsets_items(self, small_graph):
        user_nodes, item_nodes = small_graph.edge_endpoints()
        assert item_nodes.min() >= small_graph.num_users

    def test_user_items_map(self, small_graph):
        mapping = small_graph.user_items()
        assert set(mapping[0]) == {0, 1}
        assert set(mapping[2]) == {2, 3}

    def test_positive_item_sets(self, small_graph):
        sets = small_graph.positive_item_sets()
        assert sets[1] == {1, 2}
