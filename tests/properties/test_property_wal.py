"""Property sweep: WAL recovery at *every* crash point of the final record.

A crash can stop a write after any byte, and disk corruption can flip any
byte of a torn tail.  The durability invariant must hold at every single
one of those points, so this sweep is exhaustive rather than sampled: for
every byte boundary of the final record we (a) truncate the log there and
(b) corrupt the log there, then assert that recovery keeps exactly the
longest durable prefix of intact records and that a service recovered from
the damaged log serves bit-identically to an oracle that ingested only that
prefix.
"""

import shutil

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    OnlineRecommendationService,
    WriteAheadLog,
    read_wal_records,
    save_snapshot,
)
from repro.engine.wal import _HEADER, _encode_record
from repro.models import BprMF

K = 5

#: The ingest history: the final batch is the one being torn apart.
BATCHES = [
    (np.asarray([0, 1], dtype=np.int64), np.asarray([3, 7], dtype=np.int64)),
    (np.asarray([2], dtype=np.int64), np.asarray([5], dtype=np.int64)),
    (np.asarray([41, 3], dtype=np.int64), np.asarray([2, 9], dtype=np.int64)),
]


@pytest.fixture(scope="module")
def snap_path(tiny_split, tmp_path_factory):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    index = InferenceIndex.from_model(model, tiny_split)
    return save_snapshot(tmp_path_factory.mktemp("wal_prop") / "serve.snap",
                         index, candidate_modes=("int8",))


@pytest.fixture(scope="module")
def wal_image(tmp_path_factory):
    """The pristine log bytes plus each record's end offset."""
    path = tmp_path_factory.mktemp("wal_prop") / "pristine.wal"
    # append() returns rotation marks (record sequence numbers), so the
    # byte boundaries the sweep cuts at are recomputed from the framing.
    ends = [_HEADER.size]
    with WriteAheadLog(path, fsync="off") as wal:
        for users, items in BATCHES:
            wal.append(users, items)
            ends.append(ends[-1] + len(_encode_record(users, items)))
    return path.read_bytes(), ends


@pytest.fixture(scope="module")
def oracle_top_k(snap_path):
    """Expected ``top_k`` after ingesting each prefix of the history.

    Index ``n`` is the serving state with the first ``n`` batches applied —
    computed over the full (grown) user range so recovered new users are
    part of the parity check too.
    """
    grown = int(max(users.max() for users, _ in BATCHES)) + 1
    expected = []
    for n in range(len(BATCHES) + 1):
        with OnlineRecommendationService(snapshot=snap_path) as oracle:
            for users, items in BATCHES[:n]:
                oracle.ingest(users, items)
            users = np.arange(min(grown, oracle.num_users), dtype=np.int64)
            expected.append((users, oracle.top_k(users, K)))
    return expected


def _assert_recovers_prefix(path, snap_path, oracle_top_k, *,
                            max_records=None):
    """Recovery over ``path`` must equal an oracle over some intact prefix."""
    records = read_wal_records(path)
    n = len(records)
    if max_records is not None:
        assert n <= max_records
    for (users, items), (got_users, got_items) in zip(BATCHES, records):
        np.testing.assert_array_equal(users, got_users)
        np.testing.assert_array_equal(items, got_items)
    with OnlineRecommendationService(snapshot=snap_path,
                                     wal_path=path) as recovered:
        assert recovered.wal_replayed == n
        want_users, want = oracle_top_k[n]
        users = want_users[want_users < recovered.num_users]
        np.testing.assert_array_equal(recovered.top_k(users, K),
                                      want[:users.size])
    return n


class TestTornTailSweep:
    def test_truncation_at_every_byte_boundary(self, wal_image, snap_path,
                                               oracle_top_k, tmp_path):
        buffer, ends = wal_image
        path = tmp_path / "torn.wal"
        seen = set()
        # Every possible crash point inside the final record's write — from
        # "nothing of it landed" through "all but the last byte landed".
        for cut in range(ends[-2], ends[-1]):
            path.write_bytes(buffer[:cut])
            n = _assert_recovers_prefix(path, snap_path, oracle_top_k,
                                        max_records=len(BATCHES) - 1)
            assert n == len(BATCHES) - 1  # earlier records always survive
            seen.add(cut)
        # The undamaged log recovers everything.
        path.write_bytes(buffer)
        assert _assert_recovers_prefix(path, snap_path, oracle_top_k) \
            == len(BATCHES)
        assert len(seen) == ends[-1] - ends[-2]

    def test_corruption_at_every_byte_of_the_final_record(self, wal_image,
                                                          snap_path,
                                                          oracle_top_k,
                                                          tmp_path):
        buffer, ends = wal_image
        path = tmp_path / "flipped.wal"
        for offset in range(ends[-2], ends[-1]):
            damaged = bytearray(buffer)
            damaged[offset] ^= 0xFF
            path.write_bytes(bytes(damaged))
            # A flipped byte anywhere in the final record (length prefix,
            # checksum, payload) must at worst drop that record — never an
            # earlier one, and never a half-applied batch.
            n = _assert_recovers_prefix(path, snap_path, oracle_top_k,
                                        max_records=len(BATCHES) - 1)
            assert n == len(BATCHES) - 1

    def test_truncation_inside_earlier_records_keeps_shorter_prefixes(
            self, wal_image, snap_path, oracle_top_k, tmp_path):
        buffer, ends = wal_image
        path = tmp_path / "deep_torn.wal"
        # Crash points inside *every* earlier record too: recovery keeps
        # exactly the records that fully landed, wherever the tear is.
        for boundary in range(1, len(ends) - 1):
            for cut in (ends[boundary - 1],
                        (ends[boundary - 1] + ends[boundary]) // 2,
                        ends[boundary] - 1):
                path.write_bytes(buffer[:cut])
                n = _assert_recovers_prefix(path, snap_path, oracle_top_k)
                assert n == boundary - 1
