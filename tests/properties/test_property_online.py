"""Property sweep: online overlay serving is bit-identical to a full rebuild.

Randomized grid over catalogue sizes x shard counts x candidate modes, each
cell running a random interleaving of ``ingest`` / ``serve`` / ``compact``
operations (with some ingests introducing previously unseen users).  The
invariant under test is the subsystem's exactness contract:

* after EVERY operation, ``OnlineRecommendationService.top_k`` equals a
  from-scratch :class:`RecommendationService` built on the accumulated
  interactions (same embeddings incl. fallback rows, fresh exclusion CSR) —
  bit-for-bit, for exact, sharded and certified-candidate backends alike;
* ``compact()`` never changes served results, and the compacted CSR is
  bit-identical (``indptr``/``indices``/``flat_keys``) to a from-scratch
  :class:`UserItemIndex` build on the same pairs.
"""

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    OnlineRecommendationService,
    RecommendationService,
    UserItemIndex,
)

SIZES = ((18, 30, 6), (40, 25, 10), (9, 120, 4))  # (users, items, dim)
SHARD_COUNTS = (1, 4)
MODES = (None, "int8")
K = 6
STEPS = 8


def _build_index(rng, num_users, num_items, dim):
    nnz = int(rng.integers(num_users, 4 * num_users))
    exclusion = UserItemIndex(num_users, num_items,
                              rng.integers(0, num_users, nnz),
                              rng.integers(0, num_items, nnz))
    return InferenceIndex(
        num_users, num_items,
        user_embeddings=rng.normal(size=(num_users, dim)),
        item_embeddings=rng.normal(size=(num_items, dim)),
        exclusion=exclusion)


def _oracle(online, num_shards, mode):
    """A frozen service rebuilt from scratch on the accumulated state."""
    users, items = online.overlay.all_pairs()
    index = InferenceIndex(
        online.num_users, online.num_items,
        user_embeddings=online.index.user_embeddings,
        item_embeddings=online.index.item_embeddings,
        exclusion=UserItemIndex(online.num_users, online.num_items,
                                users, items))
    return RecommendationService(index=index, num_shards=num_shards,
                                 candidate_mode=mode,
                                 candidate_escalation=mode is not None,
                                 max_candidate_factor=64)


def _assert_parity(online, num_shards, mode):
    all_users = np.arange(online.num_users)
    got = online.top_k(all_users, K)
    want = _oracle(online, num_shards, mode).top_k(all_users, K)
    if mode is None:
        np.testing.assert_array_equal(got, want)
    else:
        # The candidate path is exact wherever its certificate fires …
        certified = online.candidates.last_certificate.certified
        np.testing.assert_array_equal(got[certified], want[certified])
        # … and with escalation every user is provably exact, so overlay
        # and rebuild must again agree bit-for-bit.
        online_escalated = online.candidates.top_k_adaptive(
            all_users, K, max_factor=64)
        np.testing.assert_array_equal(online_escalated, want)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mode", MODES)
def test_interleaved_ingest_serve_compact_matches_rebuild(num_shards, mode):
    rng = np.random.default_rng(20260731)
    for num_users, num_items, dim in SIZES:
        index = _build_index(rng, num_users, num_items, dim)
        online = OnlineRecommendationService(
            index=index, num_shards=num_shards, candidate_mode=mode,
            compact_threshold=10_000)  # manual compaction only
        for _ in range(STEPS):
            op = rng.choice(("ingest", "ingest", "serve", "compact"))
            if op == "ingest":
                batch = int(rng.integers(1, 25))
                # A touch of headroom lets some events create unseen users.
                users = rng.integers(0, online.num_users + 2, batch)
                items = rng.integers(0, num_items, batch)
                online.ingest(users, items)
            elif op == "compact":
                before = online.top_k(np.arange(online.num_users), K)
                online.compact()
                after = online.top_k(np.arange(online.num_users), K)
                np.testing.assert_array_equal(before, after)
            _assert_parity(online, num_shards, mode)
        # Final compaction: the merged CSR must equal a from-scratch build.
        online.compact()
        users, items = online.overlay.all_pairs()
        scratch = UserItemIndex(online.num_users, online.num_items,
                                users, items)
        np.testing.assert_array_equal(online.overlay.base.indptr,
                                      scratch.indptr)
        np.testing.assert_array_equal(online.overlay.base.indices,
                                      scratch.indices)
        np.testing.assert_array_equal(online.overlay.base.flat_keys,
                                      scratch.flat_keys)
        assert online.overlay.delta.nnz == 0
        _assert_parity(online, num_shards, mode)
