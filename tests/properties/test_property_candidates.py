"""Property sweep: certified two-stage top-K always contains the exact top-K.

Randomized grid over catalogue sizes x index dtypes x shard counts x
candidate factors x quantisation modes.  The invariant under test is the
certificate's contract: whenever a user's certificate fires, the two-stage
result must be a superset of (equivalently, equal to — both have width k)
the exact top-K set.  Uncertified users have no exactness guarantee; their
measured recall@k is accumulated and reported so regressions in bound
tightness are visible in the test log.
"""

import numpy as np
import pytest

from repro.engine import (
    CandidateIndex,
    InferenceIndex,
    ShardedCandidateIndex,
    ShardedInferenceIndex,
    UserItemIndex,
)

SIZES = ((25, 40, 8), (12, 150, 16), (48, 33, 4))  # (users, items, dim)
DTYPES = (np.float64, np.float32)
SHARD_COUNTS = (1, 3)
FACTORS = (1, 2, 4)
MODES = ("int8", "float32")
K = 7


def _build_index(rng, num_users, num_items, dim, dtype):
    nnz = rng.integers(0, 3 * num_users)
    exclusion = UserItemIndex(num_users, num_items,
                              rng.integers(0, num_users, nnz),
                              rng.integers(0, num_items, nnz))
    return InferenceIndex(
        num_users, num_items,
        user_embeddings=rng.normal(size=(num_users, dim)),
        item_embeddings=rng.normal(size=(num_items, dim)),
        exclusion=exclusion, dtype=dtype)


def _backend(index, num_shards, mode, factor):
    if num_shards == 1:
        return CandidateIndex(index, mode, factor)
    policy = "strided" if index.num_items % num_shards else "contiguous"
    return ShardedCandidateIndex(
        ShardedInferenceIndex.from_index(index, num_shards, policy=policy),
        mode, factor)


@pytest.mark.parametrize("mode", MODES)
def test_certified_two_stage_contains_exact_top_k(mode):
    rng = np.random.default_rng(20260730)
    certified_total = 0
    users_total = 0
    uncertified_recalls = []
    for num_users, num_items, dim in SIZES:
        for dtype in DTYPES:
            index = _build_index(rng, num_users, num_items, dim, dtype)
            users = np.arange(num_users)
            exact = index.top_k(users, K)
            for num_shards in SHARD_COUNTS:
                for factor in FACTORS:
                    backend = _backend(index, num_shards, mode, factor)
                    ids, cert = backend.top_k_with_certificate(users, K)
                    assert ids.shape == exact.shape
                    width = exact.shape[1]
                    # Served lists never contain train positives.
                    assert not index.exclusion.contains(
                        users[:, None], ids).any()
                    hits = (ids[:, :, None] == exact[:, None, :]).any(axis=1)
                    recall = hits.mean(axis=1)
                    # THE certified contract: two-stage ⊇ exact top-K.
                    assert (recall[cert.certified] == 1.0).all(), (
                        f"certificate fired on recall<1 "
                        f"(users={num_users}, items={num_items}, dim={dim}, "
                        f"dtype={np.dtype(dtype).name}, S={num_shards}, "
                        f"factor={factor}, k={width})")
                    certified_total += cert.num_certified
                    users_total += cert.num_users
                    uncertified_recalls.extend(recall[~cert.certified])
    # The sweep must not be vacuous: certificates fire across the grid.
    assert certified_total > 0.5 * users_total
    if uncertified_recalls:
        print(f"[{mode}] certified {certified_total}/{users_total} users; "
              f"uncertified mean recall@{K} = "
              f"{float(np.mean(uncertified_recalls)):.4f}")
    else:
        print(f"[{mode}] certified {certified_total}/{users_total} users; "
              f"no uncertified batches")


def test_tight_factor_still_exact_when_certified():
    """factor=1 prunes hardest — certificates must stay sound even there."""
    rng = np.random.default_rng(7)
    index = _build_index(rng, 60, 500, 6, np.float64)
    users = np.arange(60)
    exact = index.top_k(users, 10)
    for mode in MODES:
        ids, cert = CandidateIndex(index, mode, 1).top_k_with_certificate(
            users, 10)
        hits = (ids[:, :, None] == exact[:, None, :]).any(axis=1)
        assert (hits.mean(axis=1)[cert.certified] == 1.0).all()
