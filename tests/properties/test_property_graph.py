"""Property-based tests for the graph substrate and metrics invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import ndcg_at_k, recall_at_k
from repro.graph import BipartiteGraph, DegreeDrop, DropEdge, symmetric_normalize


@st.composite
def interaction_lists(draw, max_users=12, max_items=12, max_edges=60):
    num_users = draw(st.integers(2, max_users))
    num_items = draw(st.integers(2, max_items))
    num_edges = draw(st.integers(1, max_edges))
    users = draw(st.lists(st.integers(0, num_users - 1), min_size=num_edges, max_size=num_edges))
    items = draw(st.lists(st.integers(0, num_items - 1), min_size=num_edges, max_size=num_edges))
    return num_users, num_items, users, items


class TestGraphProperties:
    @given(interaction_lists())
    @settings(max_examples=50, deadline=None)
    def test_degree_sums_equal_edge_count(self, data):
        num_users, num_items, users, items = data
        graph = BipartiteGraph(num_users, num_items, users, items)
        assert graph.user_degrees().sum() == graph.num_edges
        assert graph.item_degrees().sum() == graph.num_edges

    @given(interaction_lists())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_symmetric_and_bipartite(self, data):
        num_users, num_items, users, items = data
        graph = BipartiteGraph(num_users, num_items, users, items)
        dense = graph.adjacency_matrix().toarray()
        np.testing.assert_allclose(dense, dense.T)
        assert dense[:num_users, :num_users].sum() == 0
        assert dense[num_users:, num_users:].sum() == 0

    @given(interaction_lists())
    @settings(max_examples=50, deadline=None)
    def test_normalized_adjacency_spectrum_bounded(self, data):
        num_users, num_items, users, items = data
        graph = BipartiteGraph(num_users, num_items, users, items)
        normalized = symmetric_normalize(graph.adjacency_matrix()).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert np.all(np.abs(eigenvalues) <= 1.0 + 1e-8)

    @given(interaction_lists(), st.floats(0.0, 0.8), st.integers(0, 2 ** 16))
    @settings(max_examples=50, deadline=None)
    def test_pruning_keeps_expected_count_and_valid_indices(self, data, ratio, seed):
        num_users, num_items, users, items = data
        graph = BipartiteGraph(num_users, num_items, users, items)
        for sampler_cls in (DropEdge, DegreeDrop):
            sampler = sampler_cls(dropout_ratio=ratio, rng=np.random.default_rng(seed))
            kept = sampler.sample_edges(graph)
            assert kept.size == sampler.num_kept(graph.num_edges)
            if kept.size:
                assert kept.min() >= 0 and kept.max() < graph.num_edges
                assert len(set(kept.tolist())) == kept.size


class TestMetricProperties:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20, unique=True),
           st.sets(st.integers(0, 50), min_size=1, max_size=10),
           st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_metrics_bounded_in_unit_interval(self, ranked, relevant, k):
        recall = recall_at_k(ranked, relevant, k)
        ndcg = ndcg_at_k(ranked, relevant, k)
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= ndcg <= 1.0

    @given(st.sets(st.integers(0, 30), min_size=1, max_size=10), st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_perfect_ranking_maximises_both_metrics(self, relevant, k):
        ranked = sorted(relevant) + [item for item in range(31, 60)]
        recall = recall_at_k(ranked, relevant, k)
        ndcg = ndcg_at_k(ranked, relevant, k)
        if k >= len(relevant):
            assert recall == 1.0
            assert abs(ndcg - 1.0) < 1e-9
        else:
            assert recall <= 1.0

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=20, unique=True),
           st.sets(st.integers(0, 50), min_size=1, max_size=10),
           st.integers(1, 19))
    @settings(max_examples=100, deadline=None)
    def test_metrics_monotone_in_k(self, ranked, relevant, k):
        assert recall_at_k(ranked, relevant, k + 1) >= recall_at_k(ranked, relevant, k)
