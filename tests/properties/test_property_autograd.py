"""Property-based tests (hypothesis) for the autograd substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.autograd.functional import log_softmax, row_cosine_similarity, softmax

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False, width=64)


def matrices(max_rows=6, max_cols=6, min_value=-10.0, max_value=10.0):
    return st.integers(1, max_rows).flatmap(
        lambda rows: st.integers(1, max_cols).flatmap(
            lambda cols: arrays(np.float64, (rows, cols),
                                elements=st.floats(min_value=min_value, max_value=max_value,
                                                   allow_nan=False, allow_infinity=False,
                                                   width=64))))


class TestAlgebraicIdentities:
    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, values):
        a = Tensor(values)
        b = Tensor(values * 0.5 + 1.0)
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_double_negation_is_identity(self, values):
        np.testing.assert_allclose((-(-Tensor(values))).data, values)

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_sum_of_mean_relation(self, values):
        t = Tensor(values)
        np.testing.assert_allclose(t.mean().item() * values.size, t.sum().item(),
                                   rtol=1e-9, atol=1e-9)

    @given(matrices())
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, values):
        np.testing.assert_allclose(Tensor(values).T.T.data, values)

    @given(matrices(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_exp_log_inverse(self, values):
        np.testing.assert_allclose(Tensor(values).log().exp().data, values, rtol=1e-8)


class TestGradientProperties:
    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(values, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(values))

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_linear_combination_gradient_scales(self, values):
        t = Tensor(values, requires_grad=True)
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(values, 3.0))

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_gradient_accumulation_is_additive(self, values):
        t = Tensor(values, requires_grad=True)
        (t * 2.0).sum().backward()
        first = t.grad.copy()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * first)


class TestStability:
    @given(matrices(min_value=-500.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_sum_to_one_for_extreme_logits(self, values):
        result = softmax(Tensor(values), axis=1)
        assert np.isfinite(result.data).all()
        np.testing.assert_allclose(result.data.sum(axis=1), np.ones(values.shape[0]), atol=1e-8)

    @given(matrices(min_value=-500.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_always_non_positive(self, values):
        result = log_softmax(Tensor(values), axis=1)
        assert np.isfinite(result.data).all()
        assert np.all(result.data <= 1e-9)

    @given(matrices(min_value=-500.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_softplus_finite_everywhere(self, values):
        assert np.isfinite(Tensor(values).softplus().data).all()

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_cosine_similarity_bounded(self, values):
        ego = Tensor(np.roll(values, 1, axis=0))
        sims = row_cosine_similarity(Tensor(values), ego)
        assert np.isfinite(sims.data).all()
        assert np.all(sims.data <= 1.0 + 1e-6)
        assert np.all(sims.data >= -1.0 - 1e-6)
