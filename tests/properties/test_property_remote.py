"""Property sweep: socket shard serving equals the in-memory oracle.

Randomized catalogues are snapshotted, served through real localhost
:class:`ShardServer` endpoints behind a :class:`RemoteExecutor`, and must
come back bit-identical to the unsharded in-memory service — across shard
counts, partition policies and candidate modes.  The remote tier's contract
is that the transport is invisible: same ids, same order, every time.
"""

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    RecommendationService,
    ShardServer,
    UserItemIndex,
    save_snapshot,
)

SIZES = ((18, 30, 6), (9, 120, 4))  # (users, items, dim)
SHARD_COUNTS = (2, 3)
POLICIES = ("contiguous", "strided")
MODES = (None, "int8")
K = 6


def _random_index(rng, num_users, num_items, dim):
    nnz = int(rng.integers(num_users, 4 * num_users))
    exclusion = UserItemIndex(num_users, num_items,
                              rng.integers(0, num_users, nnz),
                              rng.integers(0, num_items, nnz))
    return InferenceIndex(
        num_users, num_items,
        user_embeddings=rng.normal(size=(num_users, dim)),
        item_embeddings=rng.normal(size=(num_items, dim)),
        exclusion=exclusion)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("size", SIZES)
def test_remote_serving_is_bit_identical(tmp_path, seed, size):
    rng = np.random.default_rng(seed)
    index = _random_index(rng, *size)
    path = save_snapshot(tmp_path / "prop.snap", index,
                         candidate_modes=("int8",))
    users = np.arange(index.num_users, dtype=np.int64)
    policy = POLICIES[seed % len(POLICIES)]
    for num_shards in SHARD_COUNTS:
        servers = [ShardServer(path, shard, num_shards,
                               policy=policy).start()
                   for shard in range(num_shards)]
        addresses = ["{}:{}".format(*server.address) for server in servers]
        try:
            for mode in MODES:
                with RecommendationService(
                        index=index, candidate_mode=mode) as oracle_service:
                    oracle = oracle_service.top_k(users, K)
                with RecommendationService(
                        snapshot=path, executor="remote",
                        shard_addresses=addresses, shard_policy=policy,
                        candidate_mode=mode) as remote_service:
                    served = remote_service.top_k(users, K)
                assert np.array_equal(oracle, served), (
                    f"remote serving diverged (seed={seed}, size={size}, "
                    f"S={num_shards}, policy={policy}, mode={mode})")
        finally:
            for server in servers:
                server.close()
