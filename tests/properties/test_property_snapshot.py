"""Property sweep: snapshot round-trips preserve serving bit-for-bit.

Randomized grid over catalogue sizes x dtypes: every index drawn here is
saved to disk, re-opened both ways (``mmap=True`` zero-copy views and
``mmap=False`` owning arrays), and must then serve bit-identically to the
in-memory original across shard counts and candidate modes.  The invariant
is the snapshot subsystem's exactness contract: persistence is a pure
serialisation concern — it never changes a single served id.

A second property covers the raw sections: what comes back from the file
equals what went in, byte for byte, including the CSR exclusion arrays and
the stored quantised block (saved codes == requantised codes).
"""

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    RecommendationService,
    UserItemIndex,
    load_snapshot,
    quantize_item_matrix,
    save_snapshot,
)

SIZES = ((18, 30, 6), (40, 25, 10), (9, 120, 4))  # (users, items, dim)
SHARD_COUNTS = (1, 4)
MODES = (None, "int8")
DTYPES = (np.float64, np.float32)
K = 6


def _random_index(rng, num_users, num_items, dim, dtype):
    nnz = int(rng.integers(num_users, 4 * num_users))
    exclusion = UserItemIndex(num_users, num_items,
                              rng.integers(0, num_users, nnz),
                              rng.integers(0, num_items, nnz))
    return InferenceIndex(
        num_users, num_items,
        user_embeddings=rng.normal(size=(num_users, dim)),
        item_embeddings=rng.normal(size=(num_items, dim)),
        exclusion=exclusion, dtype=dtype)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("dtype", DTYPES)
def test_snapshot_serving_is_bit_identical(tmp_path, seed, size, dtype):
    rng = np.random.default_rng(seed)
    index = _random_index(rng, *size, dtype)
    path = save_snapshot(tmp_path / "prop.snap", index)
    users = np.arange(index.num_users)
    for num_shards in SHARD_COUNTS:
        for mode in MODES:
            with RecommendationService(
                    index=index, num_shards=num_shards,
                    candidate_mode=mode) as oracle_service:
                oracle = oracle_service.top_k(users, K)
            for mmap in (True, False):
                with RecommendationService(
                        snapshot=load_snapshot(path, mmap=mmap),
                        num_shards=num_shards, candidate_mode=mode) as svc:
                    got = svc.top_k(users, K)
                np.testing.assert_array_equal(
                    got, oracle,
                    err_msg=f"S={num_shards} mode={mode} mmap={mmap} "
                            f"size={size} dtype={np.dtype(dtype).name}")


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("dtype", DTYPES)
def test_sections_round_trip_byte_exact(tmp_path, seed, dtype):
    rng = np.random.default_rng(100 + seed)
    size = SIZES[seed % len(SIZES)]
    index = _random_index(rng, *size, dtype)
    path = save_snapshot(tmp_path / "prop.snap", index,
                         candidate_modes=("int8",))
    for mmap in (True, False):
        snapshot = load_snapshot(path, mmap=mmap)
        np.testing.assert_array_equal(snapshot.section("user_embeddings"),
                                      index.user_embeddings)
        np.testing.assert_array_equal(snapshot.section("item_embeddings"),
                                      index.item_embeddings)
        np.testing.assert_array_equal(snapshot.section("item_norms"),
                                      index.item_norms)
        excl = snapshot.exclusion()
        np.testing.assert_array_equal(excl.indptr, index.exclusion.indptr)
        np.testing.assert_array_equal(excl.indices, index.exclusion.indices)
        stored = snapshot.quantized_block("int8")
        fresh = quantize_item_matrix(index.item_embeddings, "int8",
                                     item_norms=index.item_norms)
        np.testing.assert_array_equal(stored.codes, fresh.codes)
        np.testing.assert_array_equal(stored.scales, fresh.scales)
        np.testing.assert_array_equal(stored.bound_norms, fresh.bound_norms)
