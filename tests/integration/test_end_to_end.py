"""Integration tests: full pipelines from raw data to ranked recommendations."""

import numpy as np
import pytest

from repro import LayerGCN, Trainer, TrainerConfig, build_model, evaluate_model, prepare_split
from repro.data import dataset_preset, chronological_split
from repro.eval import RankingEvaluator, compare_per_user
from repro.training import LayerSimilarityRecorder


class TestFullPipeline:
    def test_prepare_train_evaluate_recommend(self):
        """The README quickstart flow must work end to end."""
        split = prepare_split("tiny", seed=0)
        model = LayerGCN(split, embedding_dim=16, num_layers=3,
                         edge_dropout="degreedrop", dropout_ratio=0.1, seed=0)
        config = TrainerConfig(epochs=10, learning_rate=0.02, early_stopping_patience=5)
        history = Trainer(model, split, config).fit()
        assert history.num_epochs_run >= 1

        result = evaluate_model(model, split, ks=(10, 20))
        assert 0.0 <= result["recall@20"] <= 1.0

        recommendations = model.recommend(user=0, k=5)
        assert len(recommendations) == 5
        assert len(set(recommendations)) == 5

    def test_layergcn_beats_random_scoring(self):
        """Trained LayerGCN must clearly beat random scoring on a sparse preset."""
        split = prepare_split("games", seed=3, scale=0.5)
        model = LayerGCN(split, embedding_dim=24, num_layers=3,
                         edge_dropout="degreedrop", dropout_ratio=0.1, seed=0)
        config = TrainerConfig(epochs=20, learning_rate=0.01, early_stopping_patience=0)
        Trainer(model, split, config).fit()
        trained = evaluate_model(model, split, ks=(20,))["recall@20"]

        class _Random:
            def __init__(self, split):
                self.split = split
                self.rng = np.random.default_rng(0)

            def score_users(self, users):
                return self.rng.normal(size=(len(users), self.split.num_items))

        random_score = evaluate_model(_Random(split), split, ks=(20,))["recall@20"]
        assert trained > random_score * 1.5

    def test_training_with_per_user_significance(self, tiny_split):
        """Per-user paired t-test machinery works on real evaluation output."""
        evaluator = RankingEvaluator(tiny_split, ks=(20,), metrics=("recall",))

        lightgcn = build_model("lightgcn", tiny_split, embedding_dim=16, num_layers=2, seed=0)
        layergcn = build_model("layergcn", tiny_split, embedding_dim=16, num_layers=3,
                               dropout_ratio=0.1, seed=0)
        config = TrainerConfig(epochs=8, learning_rate=0.02, early_stopping_patience=0)
        Trainer(lightgcn, tiny_split, config).fit()
        Trainer(layergcn, tiny_split, config).fit()

        result_a = evaluator.evaluate(layergcn)
        result_b = evaluator.evaluate(lightgcn)
        report = compare_per_user(result_a, result_b, "recall@20")
        assert report.num_pairs == result_a.num_users_evaluated
        assert 0.0 <= report.p_value <= 1.0

    def test_state_dict_round_trip_preserves_scores(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        config = TrainerConfig(epochs=3, early_stopping_patience=0)
        Trainer(model, tiny_split, config).fit()
        scores_before = model.score_users([0, 1, 2])

        clone = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=99)
        clone.load_state_dict(model.state_dict())
        clone.eval()
        np.testing.assert_allclose(clone.score_users([0, 1, 2]), scores_before)

    def test_layer_similarities_are_recorded_during_real_training(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=4,
                         edge_dropout="degreedrop", dropout_ratio=0.1, seed=0)
        recorder = LayerSimilarityRecorder()
        config = TrainerConfig(epochs=4, early_stopping_patience=0)
        Trainer(model, tiny_split, config, callbacks=[recorder]).fit()
        trajectory = recorder.as_array()
        assert trajectory.shape == (4, 4)
        # Refinement similarities are cosines, hence bounded.
        assert np.all(np.abs(trajectory) <= 1.0 + 1e-9)

    def test_dataset_generation_to_split_consistency(self):
        dataset = dataset_preset("games", seed=1, scale=0.4)
        split = chronological_split(dataset)
        # Entities in the split id space must not exceed dataset sizes.
        assert split.num_users <= dataset.num_users
        assert split.num_items <= dataset.num_items
        graph = split.train_graph()
        assert graph.num_edges == split.num_train

    def test_seed_reproducibility_of_full_run(self):
        """Identical seeds must give bit-identical evaluation results."""
        def run(seed):
            split = prepare_split("tiny", seed=3)
            model = LayerGCN(split, embedding_dim=8, num_layers=2, seed=seed,
                             edge_dropout="degreedrop", dropout_ratio=0.1)
            config = TrainerConfig(epochs=3, early_stopping_patience=0)
            Trainer(model, split, config).fit()
            return evaluate_model(model, split, ks=(10,))["recall@10"]

        assert run(5) == pytest.approx(run(5))

    def test_different_seeds_change_results(self):
        def run(seed):
            split = prepare_split("tiny", seed=3)
            model = LayerGCN(split, embedding_dim=8, num_layers=2, seed=seed)
            config = TrainerConfig(epochs=3, early_stopping_patience=0)
            Trainer(model, split, config).fit()
            return evaluate_model(model, split, ks=(10,))["recall@10"]

        # Not mathematically guaranteed, but with different inits and sampling
        # the probability of an exact tie is negligible.
        assert run(1) != pytest.approx(run(2), abs=1e-12)
