"""Tests for the paired significance tests."""

import numpy as np
import pytest

from repro.eval import EvaluationResult, SignificanceReport, compare_per_user, paired_t_test


class TestPairedTTest:
    def test_clear_difference_is_significant(self):
        a = [0.30, 0.31, 0.29, 0.32, 0.30]
        b = [0.20, 0.21, 0.19, 0.22, 0.20]
        report = paired_t_test(a, b)
        assert report.significant
        assert report.p_value < 0.05
        assert report.improvement > 0

    def test_identical_samples_not_significant(self):
        a = [0.3, 0.3, 0.3]
        report = paired_t_test(a, a)
        assert not report.significant
        assert report.p_value == 1.0
        assert report.improvement == 0.0

    def test_noise_not_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0.3, 0.01, size=10)
        report = paired_t_test(base + rng.normal(0, 0.05, size=10), base)
        assert report.p_value > 0.001  # overwhelmingly likely not significant

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_requires_at_least_two_pairs(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [0.5])

    def test_improvement_sign(self):
        report = paired_t_test([0.1, 0.1], [0.2, 0.2])
        assert report.improvement < 0

    def test_improvement_with_zero_baseline(self):
        report = paired_t_test([0.1, 0.2], [0.0, 0.0])
        assert report.improvement == float("inf")

    def test_repr_contains_marker(self):
        report = paired_t_test([0.30, 0.31, 0.29, 0.32], [0.20, 0.21, 0.19, 0.22])
        assert "%" in repr(report)


class TestComparePerUser:
    def test_compare_per_user(self):
        a = EvaluationResult(per_user={"recall@20": np.array([0.5, 0.6, 0.7, 0.5])})
        b = EvaluationResult(per_user={"recall@20": np.array([0.3, 0.4, 0.5, 0.3])})
        report = compare_per_user(a, b, "recall@20")
        assert isinstance(report, SignificanceReport)
        assert report.mean_a > report.mean_b

    def test_missing_metric_rejected(self):
        a = EvaluationResult(per_user={"recall@20": np.array([0.5, 0.6])})
        b = EvaluationResult(per_user={})
        with pytest.raises(KeyError):
            compare_per_user(a, b, "recall@20")
