"""Tests for the all-ranking evaluation protocol."""

import numpy as np
import pytest

from repro.eval import EvaluationResult, RankingEvaluator, evaluate_model


class _OracleModel:
    """Scores the user's test items highest — should achieve near-perfect recall."""

    def __init__(self, split):
        self.split = split
        self._truth = split.ground_truth("test")

    def score_users(self, users):
        scores = np.zeros((len(users), self.split.num_items))
        for row, user in enumerate(users):
            for item in self._truth.get(int(user), []):
                scores[row, item] = 10.0
        return scores


class _RandomModel:
    def __init__(self, split, seed=0):
        self.split = split
        self.rng = np.random.default_rng(seed)

    def score_users(self, users):
        return self.rng.normal(size=(len(users), self.split.num_items))


class _TrainEchoModel:
    """Scores only items already seen in training; masking must zero its recall."""

    def __init__(self, split):
        self.split = split
        self._positives = split.train_positive_sets()

    def score_users(self, users):
        scores = np.zeros((len(users), self.split.num_items))
        for row, user in enumerate(users):
            for item in self._positives[int(user)]:
                scores[row, item] = 5.0
        return scores


class _BadShapeModel:
    def __init__(self, split):
        self.split = split

    def score_users(self, users):
        return np.zeros((len(users), 3))


class TestRankingEvaluator:
    def test_oracle_model_gets_high_recall(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(10, 20), metrics=("recall", "ndcg"))
        result = evaluator.evaluate(_OracleModel(tiny_split))
        assert result["recall@20"] > 0.9
        assert result["ndcg@20"] > 0.9

    def test_random_model_scores_low(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",))
        oracle = evaluator.evaluate(_OracleModel(tiny_split))
        random = evaluator.evaluate(_RandomModel(tiny_split))
        assert random["recall@10"] < oracle["recall@10"]

    def test_train_items_are_masked(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",))
        result = evaluator.evaluate(_TrainEchoModel(tiny_split))
        # All of the echo model's signal is masked away, so it ranks the
        # remaining items arbitrarily (ties) — recall must be far below oracle.
        assert result["recall@10"] < 0.9

    def test_per_user_arrays_align_with_user_count(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",))
        result = evaluator.evaluate(_OracleModel(tiny_split))
        assert result.num_users_evaluated == len(tiny_split.ground_truth("test"))
        assert result.per_user["recall@10"].shape == (result.num_users_evaluated,)

    def test_validation_partition(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",))
        result = evaluator.evaluate(_OracleModel(tiny_split), which="valid")
        assert result.num_users_evaluated == len(tiny_split.ground_truth("valid"))

    def test_invalid_metric_rejected(self, tiny_split):
        with pytest.raises(KeyError):
            RankingEvaluator(tiny_split, metrics=("accuracy",))

    def test_invalid_k_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_split, ks=(0,))

    def test_bad_score_shape_rejected(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, ks=(5,), metrics=("recall",))
        with pytest.raises(ValueError):
            evaluator.evaluate(_BadShapeModel(tiny_split))

    def test_batched_evaluation_matches_unbatched(self, tiny_split):
        model = _RandomModel(tiny_split, seed=1)
        # Model is stateless w.r.t. batching only if scores are deterministic,
        # so use a fixed score matrix instead.
        fixed_scores = np.random.default_rng(0).normal(
            size=(tiny_split.num_users, tiny_split.num_items))

        class _Fixed:
            def score_users(self, users):
                return fixed_scores[np.asarray(users, dtype=int)]

        small = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",), batch_size=3)
        large = RankingEvaluator(tiny_split, ks=(10,), metrics=("recall",), batch_size=1000)
        assert small.evaluate(_Fixed())["recall@10"] == pytest.approx(
            large.evaluate(_Fixed())["recall@10"])

    def test_top_k_indices_sorted_by_score(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        top = RankingEvaluator._top_k_indices(scores, 3)
        np.testing.assert_array_equal(top[0], [1, 3, 2])

    def test_evaluate_model_convenience(self, tiny_split):
        result = evaluate_model(_OracleModel(tiny_split), tiny_split, ks=(10,))
        assert "recall@10" in result.values


class TestEvaluationResult:
    def test_dict_access(self):
        result = EvaluationResult(values={"recall@10": 0.5})
        assert result["recall@10"] == 0.5
        assert result.as_dict() == {"recall@10": 0.5}
        assert "recall@10" in list(result.keys())

    def test_format_row(self):
        result = EvaluationResult(values={"recall@10": 0.51234, "ndcg@10": 0.3})
        text = result.format_row(["recall@10"])
        assert "recall@10=0.5123" in text

    def test_repr(self):
        assert "EvaluationResult" in repr(EvaluationResult(values={"recall@10": 0.1}))
