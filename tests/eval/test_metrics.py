"""Tests for the ranking metrics (Recall@K, NDCG@K and companions)."""

import numpy as np
import pytest

from repro.eval import (
    average_precision_at_k,
    dcg_at_k,
    hit_rate_at_k,
    idcg_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestRecall:
    def test_perfect_ranking(self):
        assert recall_at_k([1, 2, 3], {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_partial_hit(self):
        assert recall_at_k([1, 9, 8], {1, 2}, 3) == pytest.approx(0.5)

    def test_no_hits(self):
        assert recall_at_k([7, 8, 9], {1, 2}, 3) == 0.0

    def test_empty_relevant_set(self):
        assert recall_at_k([1, 2], set(), 2) == 0.0

    def test_cutoff_limits_hits(self):
        # Relevant item ranked outside the cut-off does not count.
        assert recall_at_k([9, 9, 9, 1], {1}, 3) == 0.0
        assert recall_at_k([9, 9, 9, 1], {1}, 4) == 1.0

    def test_denominator_is_relevant_count_not_k(self):
        # Eq. 26: divide by |I_u^t| even when it exceeds K.
        assert recall_at_k([1, 2], {1, 2, 3, 4}, 2) == pytest.approx(0.5)


class TestPrecisionAndHitRate:
    def test_precision(self):
        assert precision_at_k([1, 9, 2, 8], {1, 2}, 4) == pytest.approx(0.5)

    def test_precision_zero_k(self):
        assert precision_at_k([1], {1}, 0) == 0.0

    def test_hit_rate_positive(self):
        assert hit_rate_at_k([5, 1], {1}, 2) == 1.0

    def test_hit_rate_negative(self):
        assert hit_rate_at_k([5, 6], {1}, 2) == 0.0


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k([1, 2, 3], {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_worst_case_is_zero(self):
        assert ndcg_at_k([7, 8, 9], {1}, 3) == 0.0

    def test_rank_position_matters(self):
        early = ndcg_at_k([1, 9, 8], {1}, 3)
        late = ndcg_at_k([9, 8, 1], {1}, 3)
        assert early > late > 0.0

    def test_matches_manual_computation(self):
        # One relevant item at rank 2: DCG = 1/log2(3), IDCG = 1/log2(2).
        expected = (1.0 / np.log2(3.0)) / (1.0 / np.log2(2.0))
        assert ndcg_at_k([9, 1, 8], {1}, 3) == pytest.approx(expected)

    def test_dcg_binary_formula(self):
        assert dcg_at_k([1, 2], {1, 2}, 2) == pytest.approx(1.0 + 1.0 / np.log2(3.0))

    def test_idcg_caps_at_k(self):
        assert idcg_at_k(10, 2) == pytest.approx(1.0 + 1.0 / np.log2(3.0))

    def test_idcg_zero_relevant(self):
        assert idcg_at_k(0, 5) == 0.0

    def test_bounded_by_one(self, rng):
        for _ in range(20):
            ranked = rng.permutation(20).tolist()
            relevant = set(rng.choice(20, size=5, replace=False).tolist())
            value = ndcg_at_k(ranked, relevant, 10)
            assert 0.0 <= value <= 1.0


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision_at_k([1, 2], {1, 2}, 2) == pytest.approx(1.0)

    def test_empty_relevant(self):
        assert average_precision_at_k([1, 2], set(), 2) == 0.0

    def test_no_hits(self):
        assert average_precision_at_k([3, 4], {1}, 2) == 0.0

    def test_intermediate_value(self):
        # Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision_at_k([1, 9, 2], {1, 2}, 3) == pytest.approx((1.0 + 2.0 / 3.0) / 2)
