"""Parity: the vectorised evaluator must reproduce the per-user reference.

The vectorised :class:`repro.eval.RankingEvaluator` replaces the historical
per-user-loop implementation (preserved as
:class:`repro.eval.ReferenceRankingEvaluator`).  These tests pin the two
together within 1e-9 on random synthetic splits, across every vectorised
metric, several cut-offs, multiple batch sizes, and both factorised and
scorer-fallback models.
"""

import numpy as np
import pytest

from repro.data import chronological_split, dataset_preset
from repro.eval import (
    VECTORIZED_METRICS,
    RankingEvaluator,
    ReferenceRankingEvaluator,
)
from repro.models import BprMF, LightGCN, MultiVAE

ALL_KS = (1, 3, 10, 20, 50)


@pytest.fixture(scope="module")
def random_split():
    """A random synthetic split dedicated to the parity tests."""
    return chronological_split(dataset_preset("games", seed=11))


class _FixedScoreModel:
    """Deterministic dense scorer with no embedding structure."""

    def __init__(self, split, seed=0):
        self.split = split
        self._scores = np.random.default_rng(seed).normal(
            size=(split.num_users, split.num_items))

    def score_users(self, users):
        return self._scores[np.asarray(users, dtype=np.int64)]


def _assert_parity(split, model, ks=ALL_KS, metrics=VECTORIZED_METRICS,
                   batch_size=64, which="test"):
    vectorized = RankingEvaluator(split, ks=ks, metrics=metrics,
                                  batch_size=batch_size).evaluate(model, which=which)
    reference = ReferenceRankingEvaluator(split, ks=ks, metrics=metrics,
                                          batch_size=batch_size).evaluate(model, which=which)
    assert vectorized.num_users_evaluated == reference.num_users_evaluated
    assert set(vectorized.values) == set(reference.values)
    for key in reference.values:
        assert vectorized.values[key] == pytest.approx(reference.values[key], abs=1e-9)
        np.testing.assert_allclose(vectorized.per_user[key], reference.per_user[key],
                                   rtol=0, atol=1e-9, err_msg=key)


class TestVectorizedParity:
    def test_all_metrics_fixed_scorer(self, random_split):
        _assert_parity(random_split, _FixedScoreModel(random_split, seed=1))

    def test_factorized_graph_model(self, random_split):
        model = LightGCN(random_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        _assert_parity(random_split, model)

    def test_factorized_mf_model(self, random_split):
        model = BprMF(random_split, embedding_dim=8, seed=4)
        model.eval()
        _assert_parity(random_split, model)

    def test_scorer_fallback_model(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        _assert_parity(tiny_split, model, batch_size=13)

    def test_validation_partition(self, random_split):
        _assert_parity(random_split, _FixedScoreModel(random_split, seed=2),
                       which="valid")

    @pytest.mark.parametrize("batch_size", [1, 7, 100_000])
    def test_batch_size_invariance(self, tiny_split, batch_size):
        _assert_parity(tiny_split, _FixedScoreModel(tiny_split, seed=3),
                       batch_size=batch_size)

    def test_k_larger_than_item_count(self, tiny_split):
        _assert_parity(tiny_split, _FixedScoreModel(tiny_split, seed=4),
                       ks=(tiny_split.num_items + 10,))

    def test_means_match_per_user_means(self, random_split):
        result = RankingEvaluator(random_split, ks=(10,),
                                  metrics=("recall",)).evaluate(
            _FixedScoreModel(random_split, seed=5))
        assert result.values["recall@10"] == pytest.approx(
            float(result.per_user["recall@10"].mean()))


class TestVectorizedGuarantees:
    def test_non_vectorized_metric_rejected(self, tiny_split):
        from repro.eval.metrics import METRIC_FUNCTIONS
        METRIC_FUNCTIONS["custom"] = lambda ranked, relevant, k: 0.0
        try:
            with pytest.raises(KeyError):
                RankingEvaluator(tiny_split, metrics=("custom",))
        finally:
            del METRIC_FUNCTIONS["custom"]

    def test_no_per_user_python_loop_in_evaluate(self):
        """Guard the acceptance criterion structurally: the hot path of
        RankingEvaluator.evaluate must not iterate over users/rows."""
        import inspect

        from repro.eval.ranking import RankingEvaluator as RE
        source = inspect.getsource(RE.evaluate) + inspect.getsource(RE._metric_batch)
        for needle in ("for row", "for user", "enumerate(batch", "set("):
            assert needle not in source, f"per-user loop artefact: {needle}"
