"""Tests for checkpointing and seeding utilities."""

import numpy as np
import pytest

from repro.core import LayerGCN
from repro.models import BprMF, LightGCN
from repro.utils import checkpoint_metadata, load_checkpoint, save_checkpoint, seed_everything


class TestCheckpoint:
    def test_round_trip_preserves_scores(self, tiny_split, tmp_path):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        scores = model.score_users([0, 1])

        path = save_checkpoint(model, tmp_path / "model")
        assert path.suffix == ".npz"

        clone = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=123)
        metadata = load_checkpoint(clone, path)
        clone.eval()
        np.testing.assert_allclose(clone.score_users([0, 1]), scores)
        assert metadata["model_class"] == "LayerGCN"

    def test_metadata_contents(self, tiny_split, tmp_path):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        path = save_checkpoint(model, tmp_path / "bpr.npz",
                               extra_metadata={"dataset": "tiny"})
        metadata = checkpoint_metadata(path)
        assert metadata["model_name"] == "bpr"
        assert metadata["embedding_dim"] == 8
        assert metadata["extra"]["dataset"] == "tiny"
        assert metadata["num_parameters"] == model.num_parameters()

    def test_class_mismatch_rejected(self, tiny_split, tmp_path):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        path = save_checkpoint(model, tmp_path / "bpr.npz")
        other = LightGCN(tiny_split, embedding_dim=8, num_layers=2)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_shape_mismatch_rejected_even_without_strict_class(self, tiny_split, tmp_path):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        path = save_checkpoint(model, tmp_path / "bpr.npz")
        bigger = BprMF(tiny_split, embedding_dim=16, seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(bigger, path, strict_class=False)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, array=np.ones(3))
        with pytest.raises(KeyError):
            checkpoint_metadata(bogus)

    def test_creates_parent_directories(self, tiny_split, tmp_path):
        model = BprMF(tiny_split, embedding_dim=8)
        path = save_checkpoint(model, tmp_path / "nested" / "dir" / "model")
        assert path.exists()


class TestSeeding:
    def test_returns_generator(self):
        rng = seed_everything(7)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_draws(self):
        a = seed_everything(11).random(5)
        b = seed_everything(11).random(5)
        np.testing.assert_allclose(a, b)

    def test_seeds_global_numpy_state(self):
        seed_everything(3)
        first = np.random.random()
        seed_everything(3)
        assert np.random.random() == pytest.approx(first)
