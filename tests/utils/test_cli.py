"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("train", "recommend", "experiment", "models", "datasets",
                        "experiments"):
            assert command in text


class TestListingCommands:
    def test_models_listing(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "layergcn" in output and "lightgcn" in output

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("mooc", "games", "food", "yelp"):
            assert name in output

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output and "fig6" in output


class TestRecommendCommand:
    def test_recommend_json_output(self, capsys):
        code = main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["recommendations"]) == {"0", "2"}
        for items in payload["recommendations"].values():
            assert len(items) == 4
            assert len(set(items)) == 4

    def test_recommend_text_output(self, capsys):
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "1", "-k", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "user 1:" in output

    def test_recommend_rejects_bad_user(self):
        with pytest.raises(SystemExit):
            main([
                "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
                "--embedding-dim", "8", "--users", "100000",
            ])


class TestShardedRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_sharded_matches_unsharded(self, capsys):
        unsharded = self._payload(capsys, [])
        for extra in (["--shards", "4"],
                      ["--shards", "7", "--shard-policy", "strided"],
                      ["--shards", "3", "--parallel"]):
            payload = self._payload(capsys, extra)
            assert payload["recommendations"] == unsharded["recommendations"]

    def test_payload_reports_sharding(self, capsys):
        payload = self._payload(capsys, ["--shards", "2", "--parallel"])
        assert payload["shards"] == 2 and payload["parallel"] is True

    def test_rejects_non_positive_shards(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--shards", "0"])

    def test_rejects_parallel_without_shards(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(self.BASE + ["--parallel"])

    def test_non_factorized_model_fails_cleanly(self):
        with pytest.raises(SystemExit, match="factorised"):
            main([
                "recommend", "--model", "multivae", "--dataset", "tiny",
                "--epochs", "0", "--embedding-dim", "8", "--users", "0",
                "--shards", "2",
            ])

    def test_help_documents_sharding_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        text = subparsers.choices["recommend"].format_help()
        assert "--shards" in text and "--parallel" in text
        assert "--shard-policy" in text


class TestCandidateRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_certified_two_stage_matches_exact(self, capsys):
        exact = self._payload(capsys, [])
        for extra in (["--candidates", "float32"],
                      ["--candidates", "int8", "--candidate-factor", "8"],
                      ["--candidates", "float32", "--shards", "3"]):
            payload = self._payload(capsys, extra)
            stats = payload["candidates"]
            # tiny/epochs-0 scores are well separated: everything certifies,
            # so the two-stage lists must equal the exact serving path.
            assert stats["certified_users"] == stats["users"] == 2
            assert payload["recommendations"] == exact["recommendations"]

    def test_text_output_reports_certificates(self, capsys):
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "1", "-k", "3",
            "--candidates", "int8",
        ]) == 0
        assert "certified" in capsys.readouterr().out

    def test_rejects_candidate_factor_below_one(self):
        with pytest.raises(SystemExit, match="candidate-factor"):
            main(self.BASE + ["--candidates", "int8", "--candidate-factor", "0"])

    def test_rejects_unknown_candidate_mode(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--candidates", "int4"])

    def test_non_factorized_model_fails_cleanly(self):
        with pytest.raises(SystemExit, match="factorised"):
            main([
                "recommend", "--model", "multivae", "--dataset", "tiny",
                "--epochs", "0", "--embedding-dim", "8", "--users", "0",
                "--candidates", "int8",
            ])

    def test_help_documents_candidate_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        text = subparsers.choices["recommend"].format_help()
        assert "--candidates" in text and "--candidate-factor" in text


class TestTrainCommand:
    def test_train_json_output(self, capsys, tmp_path):
        code = main([
            "train", "--model", "bpr", "--dataset", "tiny", "--epochs", "2",
            "--embedding-dim", "8", "--json",
            "--checkpoint", str(tmp_path / "bpr-checkpoint"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "bpr"
        assert "recall@20" in payload["metrics"]
        assert payload["epochs_run"] >= 1
        assert payload["checkpoint"].endswith(".npz")

    def test_train_layergcn_plain_output(self, capsys):
        code = main([
            "train", "--model", "layergcn", "--dataset", "tiny", "--epochs", "1",
            "--embedding-dim", "8", "--num-layers", "2", "--scale", "1.0",
        ])
        assert code == 0
        assert "test metrics" in capsys.readouterr().out


class TestExperimentCommand:
    def test_run_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        output = capsys.readouterr().out
        assert "mooc" in output

    def test_run_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "mooc" in output

    def test_unknown_identifier(self):
        with pytest.raises(KeyError):
            main(["experiment", "table42"])
