"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("train", "recommend", "experiment", "models", "datasets",
                        "experiments"):
            assert command in text


class TestListingCommands:
    def test_models_listing(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "layergcn" in output and "lightgcn" in output

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("mooc", "games", "food", "yelp"):
            assert name in output

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output and "fig6" in output


class TestRecommendCommand:
    def test_recommend_json_output(self, capsys):
        code = main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["recommendations"]) == {"0", "2"}
        for items in payload["recommendations"].values():
            assert len(items) == 4
            assert len(set(items)) == 4

    def test_recommend_text_output(self, capsys):
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "1", "-k", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "user 1:" in output

    def test_recommend_rejects_bad_user(self):
        with pytest.raises(SystemExit):
            main([
                "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
                "--embedding-dim", "8", "--users", "100000",
            ])


class TestShardedRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_sharded_matches_unsharded(self, capsys):
        unsharded = self._payload(capsys, [])
        for extra in (["--shards", "4"],
                      ["--shards", "7", "--shard-policy", "strided"],
                      ["--shards", "3", "--parallel"]):
            payload = self._payload(capsys, extra)
            assert payload["recommendations"] == unsharded["recommendations"]

    def test_payload_reports_sharding(self, capsys):
        payload = self._payload(capsys, ["--shards", "2", "--parallel"])
        assert payload["shards"] == 2 and payload["parallel"] is True

    def test_rejects_non_positive_shards(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--shards", "0"])

    def test_rejects_parallel_without_shards(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(self.BASE + ["--parallel"])

    def test_non_factorized_model_fails_cleanly(self):
        with pytest.raises(SystemExit, match="factorised"):
            main([
                "recommend", "--model", "multivae", "--dataset", "tiny",
                "--epochs", "0", "--embedding-dim", "8", "--users", "0",
                "--shards", "2",
            ])

    def test_help_documents_sharding_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        text = subparsers.choices["recommend"].format_help()
        assert "--shards" in text and "--parallel" in text
        assert "--shard-policy" in text


class TestCandidateRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_certified_two_stage_matches_exact(self, capsys):
        exact = self._payload(capsys, [])
        for extra in (["--candidates", "float32"],
                      ["--candidates", "int8", "--candidate-factor", "8"],
                      ["--candidates", "float32", "--shards", "3"]):
            payload = self._payload(capsys, extra)
            stats = payload["candidates"]
            # tiny/epochs-0 scores are well separated: everything certifies,
            # so the two-stage lists must equal the exact serving path.
            assert stats["certified_users"] == stats["users"] == 2
            assert payload["recommendations"] == exact["recommendations"]

    def test_text_output_reports_certificates(self, capsys):
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "1", "-k", "3",
            "--candidates", "int8",
        ]) == 0
        assert "certified" in capsys.readouterr().out

    def test_rejects_candidate_factor_below_one(self):
        with pytest.raises(SystemExit, match="candidate-factor"):
            main(self.BASE + ["--candidates", "int8", "--candidate-factor", "0"])

    def test_rejects_unknown_candidate_mode(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--candidates", "int4"])

    def test_non_factorized_model_fails_cleanly(self):
        with pytest.raises(SystemExit, match="factorised"):
            main([
                "recommend", "--model", "multivae", "--dataset", "tiny",
                "--epochs", "0", "--embedding-dim", "8", "--users", "0",
                "--candidates", "int8",
            ])

    def test_help_documents_candidate_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        text = subparsers.choices["recommend"].format_help()
        assert "--candidates" in text and "--candidate-factor" in text


class TestTrainCommand:
    def test_train_json_output(self, capsys, tmp_path):
        code = main([
            "train", "--model", "bpr", "--dataset", "tiny", "--epochs", "2",
            "--embedding-dim", "8", "--json",
            "--checkpoint", str(tmp_path / "bpr-checkpoint"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "bpr"
        assert "recall@20" in payload["metrics"]
        assert payload["epochs_run"] >= 1
        assert payload["checkpoint"].endswith(".npz")

    def test_train_layergcn_plain_output(self, capsys):
        code = main([
            "train", "--model", "layergcn", "--dataset", "tiny", "--epochs", "1",
            "--embedding-dim", "8", "--num-layers", "2", "--scale", "1.0",
        ])
        assert code == 0
        assert "test metrics" in capsys.readouterr().out


class TestExperimentCommand:
    def test_run_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        output = capsys.readouterr().out
        assert "mooc" in output

    def test_run_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "mooc" in output

    def test_unknown_identifier(self):
        with pytest.raises(KeyError):
            main(["experiment", "table42"])


class TestOnlineRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,2", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def _events(self, tmp_path, rows, header="user,item"):
        path = tmp_path / "events.csv"
        lines = ([header] if header else []) + [f"{u},{i}" for u, i in rows]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_ingest_reports_stats_and_dedupes(self, capsys, tmp_path):
        path = self._events(tmp_path, [(0, 3), (1, 5), (0, 3)])
        payload = self._payload(capsys, ["--ingest", path])
        stats = payload["ingest"]
        assert stats["events"] == 3
        assert stats["ingested"] <= 2  # batch duplicate dropped
        assert stats["compactions"] == 0

    def test_ingested_item_excluded_from_recommendations(self, capsys, tmp_path):
        baseline = self._payload(capsys, [])
        consumed = baseline["recommendations"]["0"][0]
        path = self._events(tmp_path, [(0, consumed)])
        payload = self._payload(capsys, ["--ingest", path])
        assert consumed not in payload["recommendations"]["0"]
        assert payload["recommendations"]["2"] == baseline["recommendations"]["2"]

    def test_ingest_serves_new_users(self, capsys, tmp_path):
        # User id beyond the split: created by ingest, then recommendable.
        path = self._events(tmp_path, [(99, 1), (99, 2)])
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "99", "-k", "4", "--json",
            "--ingest", path,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingest"]["new_users"] >= 1
        recs = payload["recommendations"]["99"]
        assert len(recs) == 4 and 1 not in recs and 2 not in recs

    def test_ingest_composes_with_shards_and_candidates(self, capsys, tmp_path):
        path = self._events(tmp_path, [(0, 3), (2, 5)])
        plain = self._payload(capsys, ["--ingest", path])
        for extra in (["--shards", "3"],
                      ["--candidates", "int8", "--adaptive-candidates"]):
            payload = self._payload(capsys, ["--ingest", path] + extra)
            assert payload["recommendations"] == plain["recommendations"]

    def test_compact_threshold_triggers_merge(self, capsys, tmp_path):
        path = self._events(tmp_path, [(0, 1), (0, 2), (1, 3), (1, 4)])
        payload = self._payload(capsys, ["--ingest", path,
                                         "--compact-threshold", "2"])
        assert payload["ingest"]["compacted"] is True
        assert payload["ingest"]["delta_size"] == 0

    def test_wal_makes_ingest_durable_across_invocations(self, capsys,
                                                         tmp_path):
        baseline = self._payload(capsys, [])
        consumed = baseline["recommendations"]["0"][0]
        events = self._events(tmp_path, [(0, consumed)])
        wal = str(tmp_path / "ingest.wal")
        logged = self._payload(capsys, ["--ingest", events, "--wal", wal])
        assert logged["wal"]["records"] == 1
        assert consumed not in logged["recommendations"]["0"]
        # A second invocation with only the WAL replays the ingest: the
        # consumed item stays excluded with no --ingest flag at all.
        recovered = self._payload(capsys, ["--wal", wal])
        assert recovered["wal"]["replayed_records"] == 1
        assert recovered["recommendations"] == logged["recommendations"]

    def test_wal_fsync_flag_and_absent_key(self, capsys, tmp_path):
        events = self._events(tmp_path, [(0, 3)])
        wal = str(tmp_path / "ingest.wal")
        payload = self._payload(capsys, ["--ingest", events, "--wal", wal,
                                         "--wal-fsync", "always"])
        assert payload["wal"]["fsync"] == "always"
        assert payload["wal"]["syncs"] >= 1
        # Without --wal there is no wal section (and no health section
        # without a remote executor).
        plain = self._payload(capsys, [])
        assert "wal" not in plain
        assert "health" not in plain

    def test_text_output_reports_ingest(self, capsys, tmp_path):
        path = self._events(tmp_path, [(0, 3)])
        assert main([
            "recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0", "-k", "3",
            "--ingest", path,
        ]) == 0
        assert "ingested" in capsys.readouterr().out

    def test_rejects_bad_flag_combinations(self, tmp_path):
        with pytest.raises(SystemExit, match="compact-threshold"):
            main(self.BASE + ["--ingest", "x.csv", "--compact-threshold", "0"])
        with pytest.raises(SystemExit, match="adaptive-candidates"):
            main(self.BASE + ["--adaptive-candidates"])
        with pytest.raises(SystemExit, match="max-candidate-factor"):
            main(self.BASE + ["--candidates", "int8",
                              "--candidate-factor", "8",
                              "--max-candidate-factor", "2"])

    def test_rejects_unreadable_and_malformed_events(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(self.BASE + ["--ingest", str(tmp_path / "missing.csv")])
        bad = tmp_path / "bad.csv"
        bad.write_text("user,item\n0,not-an-item\n")
        with pytest.raises(SystemExit, match="integer"):
            main(self.BASE + ["--ingest", str(bad)])
        empty = tmp_path / "empty.csv"
        empty.write_text("user,item\n")
        with pytest.raises(SystemExit, match="no events"):
            main(self.BASE + ["--ingest", str(empty)])

    def test_rejects_out_of_catalogue_items(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("user,item\n0,999999\n")
        with pytest.raises(SystemExit, match="item id out of range"):
            main(self.BASE + ["--ingest", str(path)])

    def test_help_documents_online_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        text = subparsers.choices["recommend"].format_help()
        assert "--ingest" in text and "--compact-threshold" in text
        assert "--adaptive-candidates" in text
        assert "--max-candidate-factor" in text

    def test_typoed_first_data_row_errors_not_skipped(self, tmp_path):
        # A malformed FIRST line in a headerless file must error like any
        # other line, not silently vanish as a presumed header.
        bad = tmp_path / "events.csv"
        bad.write_text("O,3\n1,5\n")
        with pytest.raises(SystemExit, match="integer"):
            main(self.BASE + ["--ingest", str(bad)])

    def test_blank_line_before_header_tolerated(self, capsys, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("\nuser,item\n0,3\n1,5\n")
        payload = self._payload(capsys, ["--ingest", str(path)])
        assert payload["ingest"]["events"] == 2


class TestSnapshotCommand:
    SAVE = ["snapshot", "save", "--model", "bpr", "--dataset", "tiny",
            "--epochs", "0", "--embedding-dim", "8"]

    def _save(self, capsys, tmp_path, extra=()):
        path = tmp_path / "tiny.snap"
        assert main(self.SAVE + [str(path), "--json"] + list(extra)) == 0
        payload = json.loads(capsys.readouterr().out)
        return path, payload

    def test_save_writes_a_loadable_snapshot(self, capsys, tmp_path):
        path, payload = self._save(capsys, tmp_path)
        assert path.exists()
        assert payload["snapshot"] == str(path)
        assert payload["users"] > 0 and payload["items"] > 0
        assert payload["candidate_modes"] == ["int8"]

    def test_save_without_candidate_blocks(self, capsys, tmp_path):
        _, payload = self._save(capsys, tmp_path,
                                ["--candidate-modes", "none"])
        assert payload["candidate_modes"] == []

    def test_inspect_prints_layout(self, capsys, tmp_path):
        path, _ = self._save(capsys, tmp_path)
        assert main(["snapshot", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "user_embeddings" in out and "exclusion_indptr" in out

    def test_inspect_rejects_garbage(self, tmp_path):
        noise = tmp_path / "noise.snap"
        noise.write_bytes(b"not a snapshot at all, just filler bytes here")
        with pytest.raises(SystemExit, match="not a repro serving"):
            main(["snapshot", "inspect", str(noise)])

    def test_snapshot_requires_subcommand(self):
        with pytest.raises(SystemExit, match="save or inspect"):
            main(["snapshot"])

    def test_recommend_from_snapshot_matches_in_memory(self, capsys, tmp_path):
        path, _ = self._save(capsys, tmp_path)
        base = ["recommend", "--model", "bpr", "--dataset", "tiny",
                "--epochs", "0", "--embedding-dim", "8",
                "--users", "0,2", "-k", "4", "--json"]
        assert main(base) == 0
        in_memory = json.loads(capsys.readouterr().out)
        for extra in ([], ["--shards", "2"],
                      ["--shards", "2", "--executor", "process"],
                      ["--candidates", "int8"]):
            argv = ["recommend", "--snapshot", str(path), "--users", "0,2",
                    "-k", "4", "--json"] + extra
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["recommendations"] == in_memory["recommendations"]
            assert payload["snapshot"] == str(path)
            assert payload["model"] is None

    def test_recommend_snapshot_composes_with_ingest(self, capsys, tmp_path):
        path, _ = self._save(capsys, tmp_path)
        events = tmp_path / "events.csv"
        events.write_text("user,item\n0,3\n")
        argv = ["recommend", "--snapshot", str(path), "--users", "0",
                "-k", "4", "--json", "--ingest", str(events)]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 3 not in payload["recommendations"]["0"]

    def test_recommend_rejects_bad_snapshot_combinations(self, tmp_path):
        missing = str(tmp_path / "missing.snap")
        with pytest.raises(SystemExit, match="snapshot"):
            main(["recommend", "--snapshot", missing, "--users", "0"])
        with pytest.raises(SystemExit, match="requires --snapshot"):
            main(["recommend", "--model", "bpr", "--dataset", "tiny",
                  "--epochs", "0", "--users", "0", "--shards", "2",
                  "--executor", "process"])
        with pytest.raises(SystemExit, match="checkpoint"):
            main(["recommend", "--snapshot", missing, "--users", "0",
                  "--checkpoint", "weights.npz"])
        with pytest.raises(SystemExit, match="parallel"):
            main(["recommend", "--model", "bpr", "--dataset", "tiny",
                  "--epochs", "0", "--users", "0", "--shards", "2",
                  "--parallel", "--executor", "threads"])

    def test_help_documents_snapshot_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        recommend_help = subparsers.choices["recommend"].format_help()
        assert "--snapshot" in recommend_help and "--executor" in recommend_help
        assert "snapshot" in parser.format_help()


class TestServeRecommend:
    BASE = ["recommend", "--model", "bpr", "--dataset", "tiny", "--epochs", "0",
            "--embedding-dim", "8", "--users", "0,1,2,3", "-k", "4", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.BASE + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_serve_matches_direct_serving(self, capsys):
        direct = self._payload(capsys, [])
        served = self._payload(capsys, ["--serve"])
        assert served["recommendations"] == direct["recommendations"]

    def test_serve_coalesces_and_reports_frontend_stats(self, capsys):
        payload = self._payload(capsys, ["--serve", "--batch-window-ms", "5",
                                         "--max-batch-size", "4"])
        stats = payload["frontend"]
        assert stats["requests"] == 4
        assert stats["batches"] >= 1
        assert stats["batched_requests"] == 4  # nothing was cached up front
        assert stats["shed"] == 0 and stats["pending"] == 0
        assert stats["max_batch_size"] == 4 and stats["batch_window_ms"] == 5.0

    def test_serve_matches_direct_with_sharding(self, capsys):
        direct = self._payload(capsys, ["--shards", "3"])
        served = self._payload(capsys, ["--shards", "3", "--serve"])
        assert served["recommendations"] == direct["recommendations"]

    def test_cache_stats_in_payload(self, capsys):
        # Direct serving goes straight through top_k: the LRU stays untouched
        # but its stats are still surfaced.
        payload = self._payload(capsys, [])
        cache = payload["cache"]
        assert set(cache) == {"hits", "misses", "hit_rate", "size", "capacity"}
        assert cache["hits"] == 0 and cache["misses"] == 0
        # The frontend probes and populates the LRU per request.
        served = self._payload(capsys, ["--serve"])["cache"]
        assert served["misses"] == 4 and served["size"] == 4

    def test_text_output_reports_frontend_and_cache(self, capsys):
        argv = [arg for arg in self.BASE if arg != "--json"] + ["--serve"]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "frontend:" in output and "cache:" in output

    def test_rejects_bad_serve_knobs(self):
        with pytest.raises(SystemExit, match="batch-window-ms"):
            main(self.BASE + ["--serve", "--batch-window-ms", "-1"])
        with pytest.raises(SystemExit, match="max-batch-size"):
            main(self.BASE + ["--serve", "--max-batch-size", "0"])
        with pytest.raises(SystemExit, match="max-pending"):
            main(self.BASE + ["--serve", "--max-pending", "0"])

    def test_rejects_overflowing_max_pending(self):
        with pytest.raises(SystemExit, match="max-pending"):
            main(self.BASE + ["--serve", "--max-pending", "2"])

    def test_help_documents_serve_flags(self):
        import argparse
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        recommend_help = subparsers.choices["recommend"].format_help()
        for flag in ("--serve", "--batch-window-ms", "--max-batch-size",
                     "--max-pending"):
            assert flag in recommend_help
