"""Test helpers: numerical gradient checking for the autograd substrate."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd import Tensor


def numerical_gradient(func: Callable[[np.ndarray], float], value: np.ndarray,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = func(value)
        flat[index] = original - epsilon
        lower = func(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradient(build_loss: Callable[[Tensor], Tensor], value: np.ndarray,
                   rtol: float = 1e-4, atol: float = 1e-6) -> None:
    """Assert the autograd gradient of ``build_loss`` matches finite differences.

    ``build_loss`` maps a Tensor (requires_grad) to a scalar Tensor.
    """
    value = np.asarray(value, dtype=np.float64)

    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    def scalar_func(array: np.ndarray) -> float:
        return float(build_loss(Tensor(array.copy())).data)

    numeric = numerical_gradient(scalar_func, value)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
