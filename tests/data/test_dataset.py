"""Tests for InteractionDataset and DataSplit containers."""

import numpy as np
import pytest

from repro.data import InteractionDataset, chronological_split


@pytest.fixture()
def dataset() -> InteractionDataset:
    users = [10, 10, 20, 30, 30, 30]
    items = [100, 200, 100, 300, 200, 100]
    timestamps = [5.0, 1.0, 2.0, 3.0, 4.0, 0.5]
    return InteractionDataset(users, items, timestamps, name="toy")


class TestInteractionDataset:
    def test_ids_are_compacted(self, dataset):
        assert dataset.num_users == 3
        assert dataset.num_items == 3
        assert dataset.users.max() == 2
        assert dataset.items.max() == 2

    def test_id_maps_preserved(self, dataset):
        assert dataset.user_id_map[10] == 0
        assert dataset.item_id_map[300] in (0, 1, 2)

    def test_num_interactions_and_len(self, dataset):
        assert dataset.num_interactions == 6
        assert len(dataset) == 6

    def test_sparsity(self, dataset):
        assert dataset.sparsity == pytest.approx(1.0 - 6 / 9)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset([1, 2], [1])
        with pytest.raises(ValueError):
            InteractionDataset([1, 2], [1, 2], timestamps=[1.0])

    def test_default_timestamps_are_order(self):
        dataset = InteractionDataset([1, 2, 3], [1, 2, 3])
        np.testing.assert_allclose(dataset.timestamps, [0, 1, 2])

    def test_chronological_order(self, dataset):
        order = dataset.chronological_order()
        sorted_ts = dataset.timestamps[order]
        assert np.all(np.diff(sorted_ts) >= 0)

    def test_to_graph_dimensions(self, dataset):
        graph = dataset.to_graph()
        assert graph.num_users == dataset.num_users
        assert graph.num_edges == dataset.num_interactions

    def test_subset(self, dataset):
        subset = dataset.subset(np.array([0, 1]), name="sub")
        assert subset.num_interactions == 2
        assert subset.name == "sub"

    def test_table_row(self, dataset):
        row = dataset.table_row()
        assert row["dataset"] == "toy"
        assert row["num_interactions"] == 6

    def test_repr(self, dataset):
        assert "toy" in repr(dataset)


class TestDataSplit:
    def test_partition_counts(self, dataset):
        split = chronological_split(dataset, train_ratio=0.5, valid_ratio=0.2)
        assert split.num_train + split.num_valid + split.num_test <= dataset.num_interactions
        assert split.num_train >= 1

    def test_ground_truth_shapes(self, tiny_split):
        truth = tiny_split.ground_truth("test")
        assert all(isinstance(items, list) and items for items in truth.values())

    def test_ground_truth_validation_partition(self, tiny_split):
        truth = tiny_split.ground_truth("valid")
        assert isinstance(truth, dict)

    def test_ground_truth_invalid_name(self, tiny_split):
        with pytest.raises(ValueError):
            tiny_split.ground_truth("bogus")

    def test_train_positive_sets_cover_all_train_interactions(self, tiny_split):
        sets = tiny_split.train_positive_sets()
        total = sum(len(s) for s in sets)
        unique_pairs = len({(int(u), int(i)) for u, i in
                            zip(tiny_split.train_users, tiny_split.train_items)})
        assert total == unique_pairs

    def test_train_graph_dimensions(self, tiny_split):
        graph = tiny_split.train_graph()
        assert graph.num_users == tiny_split.num_users
        assert graph.num_items == tiny_split.num_items
        assert graph.num_edges == tiny_split.num_train

    def test_repr(self, tiny_split):
        assert "DataSplit" in repr(tiny_split)
