"""Tests for negative sampling and the batch iterators."""

import numpy as np
import pytest

from repro.data import BprBatchIterator, NegativeSampler, UserBatchIterator


class TestNegativeSampler:
    def test_negatives_avoid_positives(self, tiny_split):
        sampler = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(0))
        positives = tiny_split.train_positive_sets()
        users = tiny_split.train_users[:50]
        negatives = sampler.sample(users)
        for user, negative in zip(users, negatives):
            assert int(negative) not in positives[int(user)]

    def test_multiple_negatives_shape(self, tiny_split):
        sampler = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(1))
        negatives = sampler.sample(tiny_split.train_users[:10], num_negatives=4)
        assert negatives.shape == (10, 4)

    def test_sample_one(self, tiny_split):
        sampler = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(2))
        positives = tiny_split.train_positive_sets()
        user = int(tiny_split.train_users[0])
        for _ in range(20):
            assert sampler.sample_one(user) not in positives[user]

    def test_degenerate_user_with_all_items(self):
        sampler = NegativeSampler([set(range(5))], num_items=5, rng=np.random.default_rng(0))
        assert 0 <= sampler.sample_one(0) < 5

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            NegativeSampler([set()], num_items=0)


class TestBprBatchIterator:
    def test_epoch_covers_all_interactions(self, tiny_split):
        iterator = BprBatchIterator(tiny_split, batch_size=32, rng=np.random.default_rng(0))
        seen = 0
        for users, positives, negatives in iterator:
            assert users.shape == positives.shape == negatives.shape
            seen += users.size
        assert seen == tiny_split.num_train

    def test_len_matches_number_of_batches(self, tiny_split):
        iterator = BprBatchIterator(tiny_split, batch_size=32, rng=np.random.default_rng(0))
        assert len(iterator) == len(list(iter(iterator)))

    def test_batches_do_not_exceed_batch_size(self, tiny_split):
        iterator = BprBatchIterator(tiny_split, batch_size=16, rng=np.random.default_rng(0))
        assert all(users.size <= 16 for users, _, _ in iterator)

    def test_negatives_not_in_train_positives(self, tiny_split):
        iterator = BprBatchIterator(tiny_split, batch_size=64, rng=np.random.default_rng(3))
        positives_per_user = tiny_split.train_positive_sets()
        for users, _, negatives in iterator:
            for user, negative in zip(users, negatives):
                assert int(negative) not in positives_per_user[int(user)]

    def test_invalid_batch_size(self, tiny_split):
        with pytest.raises(ValueError):
            BprBatchIterator(tiny_split, batch_size=0)

    def test_legacy_multi_negative_shape_preserved(self, tiny_split):
        # The shim keeps the historical shapes: (B,) users with a (B, n)
        # negatives matrix, NOT the pipeline's flattened aligned triples.
        iterator = BprBatchIterator(tiny_split, batch_size=32, num_negatives=4,
                                    rng=np.random.default_rng(0))
        users, positives, negatives = next(iter(iterator))
        assert users.shape == positives.shape == (32,)
        assert negatives.shape == (32, 4)

    def test_shuffling_changes_order(self, tiny_split):
        a = BprBatchIterator(tiny_split, batch_size=tiny_split.num_train,
                             rng=np.random.default_rng(0))
        b = BprBatchIterator(tiny_split, batch_size=tiny_split.num_train,
                             rng=np.random.default_rng(99))
        users_a = next(iter(a))[0]
        users_b = next(iter(b))[0]
        assert not np.array_equal(users_a, users_b)


class TestUserBatchIterator:
    def test_rows_match_training_interactions(self, tiny_split):
        iterator = UserBatchIterator(tiny_split, batch_size=16, shuffle=False)
        positives = tiny_split.train_positive_sets()
        for users, rows in iterator:
            for row_index, user in enumerate(users):
                nonzero = set(np.flatnonzero(rows[row_index]).tolist())
                assert nonzero == positives[int(user)]

    def test_every_user_visited_once(self, tiny_split):
        iterator = UserBatchIterator(tiny_split, batch_size=7, shuffle=False)
        visited = np.concatenate([users for users, _ in iterator])
        assert sorted(visited.tolist()) == list(range(tiny_split.num_users))

    def test_interaction_row_binary(self, tiny_split):
        iterator = UserBatchIterator(tiny_split, batch_size=4)
        row = iterator.interaction_row(0)
        assert set(np.unique(row)).issubset({0.0, 1.0})
        assert row.shape == (tiny_split.num_items,)

    def test_len(self, tiny_split):
        iterator = UserBatchIterator(tiny_split, batch_size=10, shuffle=False)
        assert len(iterator) == int(np.ceil(tiny_split.num_users / 10))

    def test_invalid_batch_size(self, tiny_split):
        with pytest.raises(ValueError):
            UserBatchIterator(tiny_split, batch_size=-1)
