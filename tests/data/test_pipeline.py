"""Tests for the vectorized training-data pipeline (repro.data.pipeline)."""

import numpy as np
import pytest

from repro.data import (
    BatchSpec,
    BprPipeline,
    MultiNegativePipeline,
    NegativeSampler,
    ReferenceNegativeSampler,
    ReferenceUserBatchIterator,
    UserRowPipeline,
    build_pipeline,
)
from repro.engine import UserItemIndex


class TestBatchSpec:
    def test_defaults(self):
        spec = BatchSpec()
        assert spec.kind == "bpr" and spec.batch_size == 1024
        assert spec.num_negatives == 1 and spec.shuffle

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(kind="nope")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(batch_size=0)
        with pytest.raises(ValueError):
            BatchSpec(num_negatives=0)

    def test_spec_is_hashable(self):
        assert hash(BatchSpec()) == hash(BatchSpec())


class TestVectorizedNegativeSampler:
    def test_negatives_avoid_positives_matrix(self, tiny_split):
        sampler = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(0))
        index = UserItemIndex.from_split(tiny_split, "train")
        negatives = sampler.sample(tiny_split.train_users, num_negatives=6)
        assert negatives.shape == (tiny_split.num_train, 6)
        assert not index.contains(tiny_split.train_users[:, None], negatives).any()

    def test_shares_the_split_index(self, tiny_split):
        sampler = NegativeSampler.from_split(tiny_split)
        assert sampler.index is UserItemIndex.from_split(tiny_split, "train")

    def test_degenerate_user_terminates_with_uniform_fallback(self):
        # One user interacted with the whole catalogue, the other with all
        # but one item: both must terminate, the former uniformly.
        sampler = NegativeSampler([set(range(5)), set(range(4))], num_items=5,
                                  rng=np.random.default_rng(0))
        users = np.array([0] * 50 + [1] * 50)
        negatives = sampler.sample(users)
        assert np.all((negatives >= 0) & (negatives < 5))
        # Non-degenerate user 1 only ever receives its single non-positive.
        assert np.all(negatives[50:] == 4)
        # Degenerate user 0 hits more than one item (uniform fallback).
        assert len(set(negatives[:50].tolist())) > 1

    def test_exact_complement_fallback_is_collision_free(self):
        # max_rounds=1 forces the order-statistics fallback for a user whose
        # positives cover most of the catalogue (collisions nearly certain).
        sampler = NegativeSampler([set(range(99))], num_items=100,
                                  rng=np.random.default_rng(3), max_rounds=1)
        negatives = sampler.sample(np.zeros(200, dtype=np.int64))
        assert np.all(negatives == 99)

    def test_complement_fallback_uniform_over_gaps(self):
        # Positives leave gaps at {1, 4, 7}; the fallback must reach each.
        sampler = NegativeSampler([{0, 2, 3, 5, 6}], num_items=8,
                                  rng=np.random.default_rng(5), max_rounds=1)
        negatives = sampler.sample(np.zeros(300, dtype=np.int64))
        assert set(negatives.tolist()) == {1, 4, 7}

    def test_seeded_determinism(self, tiny_split):
        a = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(11))
        b = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(11))
        users = tiny_split.train_users[:64]
        np.testing.assert_array_equal(a.sample(users, 3), b.sample(users, 3))

    def test_marginal_matches_reference_sampler(self, tiny_split):
        """Same distribution as the preserved loop oracle (TV distance)."""
        user = int(np.argmax(np.diff(UserItemIndex.from_split(tiny_split, "train").indptr)))
        draws = 20_000
        users = np.full(draws, user, dtype=np.int64)
        vec = NegativeSampler.from_split(tiny_split, rng=np.random.default_rng(0))
        ref = ReferenceNegativeSampler.from_split(tiny_split, rng=np.random.default_rng(1))
        vec_freq = np.bincount(vec.sample(users), minlength=tiny_split.num_items) / draws
        ref_freq = np.bincount(ref.sample(users), minlength=tiny_split.num_items) / draws
        assert 0.5 * np.abs(vec_freq - ref_freq).sum() < 0.1

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            NegativeSampler([set()], num_items=3, max_rounds=0)

    def test_constructor_requires_source(self):
        with pytest.raises(ValueError):
            NegativeSampler()


class TestBprPipeline:
    def test_epoch_covers_all_interactions_once(self, tiny_split):
        pipeline = BprPipeline(tiny_split, BatchSpec(kind="bpr", batch_size=32),
                               rng=np.random.default_rng(0))
        seen_users, seen_items = [], []
        for users, positives, negatives in pipeline:
            assert users.shape == positives.shape == negatives.shape
            seen_users.append(users)
            seen_items.append(positives)
        pairs = set(zip(np.concatenate(seen_users).tolist(),
                        np.concatenate(seen_items).tolist()))
        expected = set(zip(tiny_split.train_users.tolist(),
                           tiny_split.train_items.tolist()))
        assert pairs == expected

    def test_len(self, tiny_split):
        pipeline = BprPipeline(tiny_split, BatchSpec(kind="bpr", batch_size=32))
        assert len(pipeline) == int(np.ceil(tiny_split.num_train / 32))
        assert len(pipeline) == len(list(iter(pipeline)))

    def test_kind_mismatch_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            BprPipeline(tiny_split, BatchSpec(kind="user_rows"))

    def test_unshuffled_order_is_chronological(self, tiny_split):
        pipeline = BprPipeline(tiny_split,
                               BatchSpec(kind="bpr", batch_size=1_000_000, shuffle=False))
        users, items, _ = next(iter(pipeline))
        np.testing.assert_array_equal(users, tiny_split.train_users)
        np.testing.assert_array_equal(items, tiny_split.train_items)

    def test_multi_negative_override_flattens_into_triples(self, tiny_split):
        # num_negatives > 1 on the pairwise kind expands each positive into
        # n aligned 1-d triples, so any pairwise train_step consumes them.
        pipeline = BprPipeline(tiny_split,
                               BatchSpec(kind="bpr", batch_size=32, num_negatives=3,
                                         shuffle=False),
                               rng=np.random.default_rng(0))
        users, items, negatives = next(iter(pipeline))
        assert users.shape == items.shape == negatives.shape
        assert users.size == 32 * 3
        np.testing.assert_array_equal(users, np.repeat(tiny_split.train_users[:32], 3))
        np.testing.assert_array_equal(items, np.repeat(tiny_split.train_items[:32], 3))


class TestMultiNegativePipeline:
    def test_always_two_dimensional(self, tiny_split):
        pipeline = MultiNegativePipeline(
            tiny_split, BatchSpec(kind="multi_negative", batch_size=64, num_negatives=1))
        for users, _, negatives in pipeline:
            assert negatives.shape == (users.size, 1)

    def test_multiple_negatives_avoid_positives(self, tiny_split):
        pipeline = MultiNegativePipeline(
            tiny_split, BatchSpec(kind="multi_negative", batch_size=64, num_negatives=5),
            rng=np.random.default_rng(2))
        index = UserItemIndex.from_split(tiny_split, "train")
        for users, _, negatives in pipeline:
            assert negatives.shape == (users.size, 5)
            assert not index.contains(users[:, None], negatives).any()


class TestUserRowPipeline:
    def test_rows_match_reference_iterator(self, tiny_split):
        pipeline = UserRowPipeline(tiny_split,
                                   BatchSpec(kind="user_rows", batch_size=16,
                                             shuffle=False))
        reference = ReferenceUserBatchIterator(tiny_split, batch_size=16, shuffle=False)
        for (users, rows), (ref_users, ref_rows) in zip(pipeline, reference):
            np.testing.assert_array_equal(users, ref_users)
            np.testing.assert_array_equal(rows, ref_rows)

    def test_interaction_rows_batch(self, tiny_split):
        pipeline = UserRowPipeline(tiny_split, BatchSpec(kind="user_rows"))
        positives = tiny_split.train_positive_sets()
        rows = pipeline.interaction_rows(np.arange(8))
        assert rows.shape == (8, tiny_split.num_items)
        for user in range(8):
            assert set(np.flatnonzero(rows[user]).tolist()) == positives[user]

    def test_row_dtype_configurable(self, tiny_split):
        pipeline = UserRowPipeline(
            tiny_split, BatchSpec(kind="user_rows", row_dtype="float32"))
        _, rows = next(iter(pipeline))
        assert rows.dtype == np.float32


class TestBuildPipeline:
    @pytest.mark.parametrize("kind,cls", [
        ("bpr", BprPipeline),
        ("multi_negative", MultiNegativePipeline),
        ("user_rows", UserRowPipeline),
    ])
    def test_dispatch(self, tiny_split, kind, cls):
        pipeline = build_pipeline(tiny_split, BatchSpec(kind=kind))
        assert type(pipeline) is cls
        assert pipeline.spec.kind == kind
