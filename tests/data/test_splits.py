"""Tests for chronological splitting, cold-start filtering and k-core filtering."""

import numpy as np
import pytest

from repro.data import InteractionDataset, chronological_split, k_core_filter, leave_last_out_split


def _make_dataset(num_users=30, num_items=20, interactions_per_user=8, seed=0):
    rng = np.random.default_rng(seed)
    users, items = [], []
    for user in range(num_users):
        chosen = rng.choice(num_items, size=interactions_per_user, replace=False)
        for item in chosen:
            users.append(user)
            items.append(int(item))
    # Interleave users in time so the chronological split does not turn whole
    # users into cold-start entities.
    timestamps = rng.permutation(len(users)).astype(float)
    return InteractionDataset(users, items, timestamps, name="synthetic-split")


class TestChronologicalSplit:
    def test_ratios_respected(self):
        dataset = _make_dataset()
        split = chronological_split(dataset, train_ratio=0.7, valid_ratio=0.1)
        total = dataset.num_interactions
        assert split.num_train == pytest.approx(0.7 * total, abs=2)
        # Validation/test can only shrink due to cold-start filtering.
        assert split.num_valid <= round(0.1 * total) + 1
        assert split.num_test <= round(0.2 * total) + 1

    def test_train_comes_before_test_in_time(self):
        dataset = _make_dataset()
        split = chronological_split(dataset)
        # Reconstruct the timestamps of train vs test from the original data:
        # the split is chronological, so the largest train index must precede
        # the smallest test index in the sorted ordering.
        assert split.num_train > 0 and split.num_test > 0

    def test_no_cold_start_entities_in_eval(self):
        dataset = _make_dataset()
        split = chronological_split(dataset)
        assert split.valid_users.size == 0 or split.valid_users.max() < split.num_users
        assert split.test_users.size == 0 or split.test_users.max() < split.num_users
        assert split.valid_items.size == 0 or split.valid_items.max() < split.num_items
        assert split.test_items.size == 0 or split.test_items.max() < split.num_items

    def test_id_space_defined_by_train(self):
        dataset = _make_dataset()
        split = chronological_split(dataset)
        assert split.num_users == len(np.unique(split.train_users))
        assert split.num_items == len(np.unique(split.train_items))

    def test_invalid_ratios_rejected(self):
        dataset = _make_dataset(num_users=5)
        with pytest.raises(ValueError):
            chronological_split(dataset, train_ratio=0.0)
        with pytest.raises(ValueError):
            chronological_split(dataset, train_ratio=0.9, valid_ratio=0.2)

    def test_extra_metadata_records_ratios(self):
        split = chronological_split(_make_dataset(), train_ratio=0.6, valid_ratio=0.2)
        assert split.extra["train_ratio"] == 0.6


class TestKCoreFilter:
    def test_removes_rare_users_and_items(self):
        users = [0] * 6 + [1]          # user 1 has a single interaction
        items = [0, 1, 2, 3, 4, 5, 0]
        dataset = InteractionDataset(users, items)
        filtered = k_core_filter(dataset, k_user=2, k_item=2)
        # Only item 0 has >= 2 interactions, but removing the others leaves
        # user 0 with a single edge, so the result collapses further.
        assert filtered.num_interactions <= 2

    def test_all_kept_when_threshold_met(self):
        dataset = _make_dataset(num_users=10, num_items=5, interactions_per_user=5)
        filtered = k_core_filter(dataset, k_user=2, k_item=2)
        assert filtered.num_interactions == dataset.num_interactions

    def test_empty_result_is_valid(self):
        dataset = InteractionDataset([0, 1], [0, 1])
        filtered = k_core_filter(dataset, k_user=5, k_item=5)
        assert filtered.num_interactions == 0

    def test_resulting_degrees_satisfy_core(self):
        dataset = _make_dataset(num_users=25, num_items=15, interactions_per_user=4, seed=3)
        filtered = k_core_filter(dataset, k_user=3, k_item=3)
        if filtered.num_interactions:
            user_counts = np.bincount(filtered.users)
            item_counts = np.bincount(filtered.items)
            assert user_counts[user_counts > 0].min() >= 3
            assert item_counts[item_counts > 0].min() >= 3


class TestLeaveLastOut:
    def test_each_eligible_user_has_one_test_item(self):
        dataset = _make_dataset(num_users=12, interactions_per_user=6)
        split = leave_last_out_split(dataset)
        assert split.num_test == 12
        assert split.num_valid == 12

    def test_short_histories_go_to_train_only(self):
        dataset = InteractionDataset([0, 0, 1], [0, 1, 0])
        split = leave_last_out_split(dataset)
        assert split.num_test <= 1
        assert split.num_train >= 2

    def test_protocol_recorded(self):
        split = leave_last_out_split(_make_dataset(num_users=4))
        assert split.extra["protocol"] == "leave-last-out"
