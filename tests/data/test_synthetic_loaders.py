"""Tests for the synthetic dataset generators and the file/preset loaders."""

import numpy as np
import pytest

from repro.data import (
    PRESETS,
    SyntheticConfig,
    dataset_preset,
    generate_dataset,
    list_presets,
    load_interactions_csv,
    prepare_split,
)


class TestSyntheticGenerator:
    def test_respects_configured_sizes(self):
        config = SyntheticConfig(num_users=50, num_items=30, num_interactions=400, name="cfg")
        dataset = generate_dataset(config, seed=0)
        assert dataset.num_users <= 50
        assert dataset.num_items <= 30
        assert dataset.num_interactions <= 400
        assert dataset.num_interactions > 100

    def test_reproducible_with_same_seed(self):
        config = SyntheticConfig(num_users=40, num_items=20, num_interactions=300)
        a = generate_dataset(config, seed=5)
        b = generate_dataset(config, seed=5)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)

    def test_different_seeds_differ(self):
        config = SyntheticConfig(num_users=40, num_items=20, num_interactions=300)
        a = generate_dataset(config, seed=1)
        b = generate_dataset(config, seed=2)
        assert not (np.array_equal(a.users, b.users) and np.array_equal(a.items, b.items))

    def test_no_duplicate_interactions(self):
        dataset = generate_dataset(SyntheticConfig(num_users=30, num_items=15,
                                                   num_interactions=500), seed=3)
        pairs = set(zip(dataset.users.tolist(), dataset.items.tolist()))
        assert len(pairs) == dataset.num_interactions

    def test_timestamps_roughly_increasing(self):
        dataset = generate_dataset(SyntheticConfig(num_users=30, num_items=15,
                                                   num_interactions=400), seed=4)
        # Timestamps have jitter but their ordering must correlate with index order.
        order = dataset.chronological_order()
        displacement = np.abs(order - np.arange(order.size)).mean()
        assert displacement < order.size * 0.2


class TestPresets:
    def test_all_presets_listed(self):
        names = list_presets()
        for expected in ("mooc", "games", "food", "yelp", "tiny"):
            assert expected in names

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            dataset_preset("imaginary")

    def test_scale_shrinks_dataset(self):
        full = dataset_preset("games", seed=0, scale=1.0)
        small = dataset_preset("games", seed=0, scale=0.3)
        assert small.num_interactions < full.num_interactions

    def test_mooc_is_denser_than_yelp(self):
        """The MOOC preset must reproduce the paper's dense-platform regime."""
        mooc = dataset_preset("mooc", seed=0)
        yelp = dataset_preset("yelp", seed=0)
        assert mooc.sparsity < yelp.sparsity
        # MOOC has far more users per item than yelp (Table I shape).
        assert mooc.num_users / mooc.num_items > yelp.num_users / yelp.num_items

    def test_mooc_items_have_higher_degrees_than_yelp(self):
        mooc_graph = dataset_preset("mooc", seed=0).to_graph()
        yelp_graph = dataset_preset("yelp", seed=0).to_graph()
        assert np.median(mooc_graph.item_degrees()) > np.median(yelp_graph.item_degrees())

    def test_presets_are_immutable_configs(self):
        assert isinstance(PRESETS["mooc"], SyntheticConfig)
        with pytest.raises(AttributeError):
            PRESETS["mooc"].num_users = 1


class TestLoaders:
    def test_load_interactions_csv(self, tmp_path):
        path = tmp_path / "interactions.csv"
        path.write_text("user,item,ts\n"
                        "alice,apple,3\n"
                        "bob,apple,1\n"
                        "alice,pear,2\n")
        dataset = load_interactions_csv(path)
        assert dataset.num_users == 2
        assert dataset.num_items == 2
        assert dataset.num_interactions == 3

    def test_load_csv_without_timestamp_column(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("u,i\n1,2\n2,3\n")
        dataset = load_interactions_csv(path, timestamp_column=None)
        assert dataset.num_interactions == 2

    def test_prepare_split_from_preset(self):
        split = prepare_split("tiny", seed=0)
        assert split.num_train > 0
        assert split.num_users > 0

    def test_prepare_split_from_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        lines = ["user,item,ts"]
        rng = np.random.default_rng(0)
        for t in range(300):
            lines.append(f"{rng.integers(20)},{rng.integers(15)},{t}")
        path.write_text("\n".join(lines))
        split = prepare_split("custom", source_csv=path)
        assert split.num_train > 100

    def test_prepare_split_applies_core_filter(self):
        games = prepare_split("games", seed=0, scale=0.5)
        # 5-core (softened by scale) guarantees training-item degrees >= 2.
        item_degrees = games.train_graph().item_degrees()
        assert item_degrees[item_degrees > 0].min() >= 1
