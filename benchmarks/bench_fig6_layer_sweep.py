"""Benchmark E10 — Fig. 6: effect of the number of layers (1-8).

Sweeps LayerGCN and LightGCN over increasing depths on the dense preset and
prints R@50 / N@50 per depth.  The paper's finding: LightGCN peaks at a
shallow depth and then degrades (over-smoothing) while LayerGCN keeps or
improves its accuracy as depth grows.
"""


from repro.experiments import format_layer_sweep, run_layer_sweep

from .conftest import print_block

DEPTHS = (1, 2, 4, 6, 8)


def test_fig6_layer_sweep(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_layer_sweep(dataset="mooc", layers=DEPTHS, scale=bench_scale),
        rounds=1, iterations=1)
    print_block("Fig. 6 — R@50 / N@50 vs number of layers (MOOC)", format_layer_sweep(rows))

    def series(model):
        return [row["recall@50"] for row in rows if row["model"] == model]

    layergcn = series("layergcn")
    lightgcn = series("lightgcn")
    assert len(layergcn) == len(DEPTHS) and len(lightgcn) == len(DEPTHS)

    # Shape check: at the deepest setting LayerGCN holds up at least as well
    # as LightGCN relative to each model's own best depth (LayerGCN resists
    # over-smoothing better).
    layergcn_retention = layergcn[-1] / max(layergcn)
    lightgcn_retention = lightgcn[-1] / max(lightgcn)
    assert layergcn_retention >= lightgcn_retention - 0.15
