"""Benchmark JSON artifacts: machine-readable results for CI upload.

When the ``REPRO_BENCH_JSON`` environment variable names a directory, every
benchmark dumps its result rows there as ``<benchmark>.json`` so the CI
workflow can attach them to the run (``actions/upload-artifact``) and
regressions can be diffed across pushes.  Without the variable the helper is
a no-op, keeping local runs side-effect free.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Optional


def write_artifact(name: str, payload) -> Optional[Path]:
    """Write ``payload`` as ``$REPRO_BENCH_JSON/<name>.json`` (or skip).

    The payload is wrapped with enough provenance (python/numpy versions,
    the dataset override in effect) to interpret the numbers later; NumPy
    scalars serialise through ``default=float``.
    """
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return None
    import numpy as np

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "dataset_override": os.environ.get("REPRO_BENCH_DATASET"),
        "results": payload,
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, default=float) + "\n")
    print(f"[artifacts] wrote {path}", file=sys.stderr)
    return path
