"""Benchmark JSON artifacts: machine-readable results for CI upload.

When the ``REPRO_BENCH_JSON`` environment variable names a directory, every
benchmark dumps its result rows there as ``<benchmark>.json`` so the CI
workflow can attach them to the run (``actions/upload-artifact``) and
regressions can be diffed across pushes.  Without the variable the helper is
a no-op, keeping local runs side-effect free.

Every document is keyed for cross-PR trajectory comparison: the dataset
preset(s) the numbers were measured on, the git commit they were measured
at, an ISO-8601 UTC wall-clock timestamp, and the process's peak RSS (so
memory claims are recorded alongside latency claims).  Two ``BENCH_*.json`` files
are comparable iff their ``preset`` matches; ``git_sha`` orders them along
the history.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence


def peak_rss_bytes() -> Optional[int]:
    """High-water resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised here
    so the memory claims the benchmarks make (int8 >= 3x smaller blocks,
    mmap'd snapshots paging lazily) are recorded comparably in the CI JSON.
    Returns None where the ``resource`` module is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only dependency
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` with linear interpolation.

    Matches ``numpy.percentile``'s default (``method="linear"``): the rank
    ``(n - 1) * q / 100`` is split into its integer neighbours and the value
    interpolated between them.  Shared by every latency-reporting benchmark
    so their p50/p99 numbers are computed identically.  Raises
    ``ValueError`` on an empty sample set or a ``q`` outside [0, 100].
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(x) for x in samples)
    if not ordered:
        raise ValueError("percentile of an empty sample set is undefined")
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def latency_summary(seconds: Sequence[float]) -> dict:
    """p50/p90/p99 (+ count/mean/max) of latency samples, in milliseconds.

    ``seconds`` are raw per-request wall-clock latencies; the summary is the
    shape the load-generator benchmarks record in their JSON artifacts and
    gate their latency budgets on.
    """
    ordered = sorted(float(x) for x in seconds)
    if not ordered:
        raise ValueError("latency_summary needs at least one sample")
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1e3,
        "p50_ms": percentile(ordered, 50.0) * 1e3,
        "p90_ms": percentile(ordered, 90.0) * 1e3,
        "p99_ms": percentile(ordered, 99.0) * 1e3,
        "max_ms": ordered[-1] * 1e3,
    }


def telemetry_snapshot() -> Optional[dict]:
    """The engine's metrics-registry snapshot, if the engine was imported.

    Benchmarks exercise the serving stack, so by artifact-writing time the
    process registry holds every counter and latency histogram the run
    produced; stamping it into the document makes each benchmark JSON a
    full telemetry record, not just its headline numbers.  Guarded import:
    artifacts must stay writable from benchmarks that never touch the
    engine (and from stripped-down environments).
    """
    try:
        from repro.engine.observability import metrics
    except ImportError:  # pragma: no cover - engine not on the path
        return None
    snapshot = metrics().snapshot()
    if not snapshot.get("counters") and not snapshot.get("histograms") \
            and not snapshot.get("gauges"):
        return None
    return snapshot


def git_sha() -> Optional[str]:
    """Commit the numbers were measured at (CI env var, then git, else None)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    return probe.stdout.strip() if probe.returncode == 0 else None


def write_artifact(name: str, payload, *,
                   preset: Optional[str] = None) -> Optional[Path]:
    """Write ``payload`` as ``$REPRO_BENCH_JSON/<name>.json`` (or skip).

    The payload is wrapped with enough provenance to key the numbers across
    PRs (preset, git SHA, timestamp) and to interpret them later
    (python/numpy versions, the dataset override in effect); NumPy scalars
    serialise through ``default=float``.  ``preset`` should name the dataset
    preset(s) the benchmark actually ran on — it falls back to the
    ``REPRO_BENCH_DATASET`` override when omitted.
    """
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return None
    import numpy as np

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "preset": preset or os.environ.get("REPRO_BENCH_DATASET"),
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "dataset_override": os.environ.get("REPRO_BENCH_DATASET"),
        "peak_rss_bytes": peak_rss_bytes(),
        "telemetry": telemetry_snapshot(),
        "results": payload,
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, default=float) + "\n")
    print(f"[artifacts] wrote {path}", file=sys.stderr)
    return path
