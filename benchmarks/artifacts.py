"""Benchmark JSON artifacts: machine-readable results for CI upload.

When the ``REPRO_BENCH_JSON`` environment variable names a directory, every
benchmark dumps its result rows there as ``<benchmark>.json`` so the CI
workflow can attach them to the run (``actions/upload-artifact``) and
regressions can be diffed across pushes.  Without the variable the helper is
a no-op, keeping local runs side-effect free.

Every document is keyed for cross-PR trajectory comparison: the dataset
preset(s) the numbers were measured on, the git commit they were measured
at, an ISO-8601 UTC wall-clock timestamp, and the process's peak RSS (so
memory claims are recorded alongside latency claims).  Two ``BENCH_*.json`` files
are comparable iff their ``preset`` matches; ``git_sha`` orders them along
the history.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional


def peak_rss_bytes() -> Optional[int]:
    """High-water resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised here
    so the memory claims the benchmarks make (int8 >= 3x smaller blocks,
    mmap'd snapshots paging lazily) are recorded comparably in the CI JSON.
    Returns None where the ``resource`` module is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only dependency
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def git_sha() -> Optional[str]:
    """Commit the numbers were measured at (CI env var, then git, else None)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    return probe.stdout.strip() if probe.returncode == 0 else None


def write_artifact(name: str, payload, *,
                   preset: Optional[str] = None) -> Optional[Path]:
    """Write ``payload`` as ``$REPRO_BENCH_JSON/<name>.json`` (or skip).

    The payload is wrapped with enough provenance to key the numbers across
    PRs (preset, git SHA, timestamp) and to interpret them later
    (python/numpy versions, the dataset override in effect); NumPy scalars
    serialise through ``default=float``.  ``preset`` should name the dataset
    preset(s) the benchmark actually ran on — it falls back to the
    ``REPRO_BENCH_DATASET`` override when omitted.
    """
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return None
    import numpy as np

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "preset": preset or os.environ.get("REPRO_BENCH_DATASET"),
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "dataset_override": os.environ.get("REPRO_BENCH_DATASET"),
        "peak_rss_bytes": peak_rss_bytes(),
        "results": payload,
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, default=float) + "\n")
    print(f"[artifacts] wrote {path}", file=sys.stderr)
    return path
