"""Ablation benchmark — full vs pruned graph at inference time.

Section III-B-1 of the paper states that the pruned adjacency is used only
during training; inference always runs on the full normalised adjacency.
This benchmark quantifies that choice by scoring the same trained LayerGCN
with both operators.
"""


from repro.eval import RankingEvaluator
from repro.experiments import format_table, load_splits
from repro.models import build_model
from repro.training import Trainer

from .conftest import print_block


def _run(scale):
    split = load_splits(["mooc"], scale=scale)["mooc"]
    model = build_model("layergcn", split, embedding_dim=scale.embedding_dim,
                        batch_size=scale.batch_size, seed=scale.seed,
                        num_layers=4, edge_dropout="degreedrop", dropout_ratio=0.3)
    Trainer(model, split, scale.trainer_config()).fit()
    evaluator = RankingEvaluator(split, ks=(20, 50), metrics=("recall", "ndcg"))

    # Inference on the full graph (the paper's protocol).
    model.eval()
    full_graph = evaluator.evaluate(model, which="test").as_dict()

    # Inference on a freshly pruned graph (the ablated alternative).
    model.train()
    model.begin_epoch(999)
    pruned_operator = model._train_operator
    model.eval()
    model.adjacency, original = pruned_operator, model.adjacency
    model._cached_final = None
    pruned_graph = evaluator.evaluate(model, which="test").as_dict()
    model.adjacency = original
    model._cached_final = None

    return [
        {"inference_graph": "full (paper protocol)", **full_graph},
        {"inference_graph": "pruned (ablation)", **pruned_graph},
    ]


def test_ablation_inference_graph(benchmark, bench_scale):
    rows = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    print_block("Ablation — full vs pruned adjacency at inference (LayerGCN, MOOC)",
                format_table(rows, ["inference_graph", "recall@20", "recall@50",
                                    "ndcg@20", "ndcg@50"]))

    full = rows[0]
    pruned = rows[1]
    # Using the full graph at inference should not hurt; the paper's protocol
    # is expected to be at least as good as scoring on the pruned operator.
    assert full["recall@50"] >= pruned["recall@50"] * 0.9
