"""Benchmark E9 — Fig. 5: LayerGCN layer-refinement similarities during training.

The per-epoch mean cosine similarity between each refined hidden layer and the
ego layer is recorded.  The paper observes that (unlike the learnable weights
of Fig. 1) no single layer dominates, and that even-hop layers tend to score
higher than odd-hop layers because even-hop neighbours share the node's type
(user/user or item/item) in the bipartite graph.
"""

import numpy as np

from repro.experiments import run_layer_similarities, summarize_trajectory

from .conftest import print_block


def test_fig5_layer_similarities(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_layer_similarities(dataset="mooc", num_layers=4, dropout_ratio=0.1,
                                       scale=bench_scale),
        rounds=1, iterations=1)

    labels = [f"{i}-hop" for i in range(1, result["num_layers"] + 1)]
    print_block("Fig. 5 — mean refinement similarity per layer (LayerGCN, MOOC)",
                summarize_trajectory(result["trajectory"], labels)
                + f"\n\nlargest single-layer share of total weighting: "
                  f"{result['max_final_share']:.3f}")

    trajectory = result["trajectory"]
    assert trajectory.shape[1] == 4
    assert np.all(np.abs(trajectory) <= 1.0 + 1e-9)
    # Shape check: no layer collapses to holding (almost) all of the weighting,
    # in contrast to the ego-layer collapse of Fig. 1.
    assert result["max_final_share"] < 0.9
