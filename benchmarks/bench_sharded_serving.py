"""Benchmark — sharded top-K serving: exact parity gate + fan-out throughput.

Partitions the frozen item-embedding matrix into S shards (contiguous and
strided policies) and serves batched top-K through
:class:`repro.engine.ShardedInferenceIndex`, checking two things:

* **Parity (the CI gate).**  For S ∈ {1, 2, 4, 7} the sharded path must
  return *bit-exact* top-K lists (same ids, same order) as the unsharded
  :class:`InferenceIndex` oracle wherever scores are distinct: the masked
  path at a ``k`` that stays inside the finite-score region, and the
  unmasked path at a ``k`` larger than every shard (so the k>items-per-shard
  and empty-shard merge behaviour is exercised end-to-end).  Any drift
  between the shard merge and the single-matrix ranking fails the build.
* **Throughput.**  Full-catalogue top-K over all users, timed per shard
  count with the serial and the threaded executor.  On the toy synthetic
  presets fan-out overhead usually beats the BLAS win — the numbers are
  reported for trend tracking, not asserted (sharding pays off past the
  single-worker memory wall, which no CI-sized preset reaches).

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_sharded_serving.py`` or via
pytest: ``pytest benchmarks/bench_sharded_serving.py -s``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    InferenceIndex,
    SerialExecutor,
    ShardedInferenceIndex,
    ThreadedExecutor,
)
from repro.models import LightGCN  # noqa: E402

SHARD_COUNTS = (1, 2, 4, 7)
POLICIES = ("contiguous", "strided")
DEFAULT_DATASETS = ("mooc", "games")
TOP_K = 10


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _build_index(name: str) -> InferenceIndex:
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return InferenceIndex.from_model(model, split)


def check_parity(index: InferenceIndex) -> int:
    """Assert bit-exact shard/unshard agreement; returns #comparisons made.

    Distinct-score regions only: exact ties (the ``-inf`` masked tail when k
    approaches the catalogue size) are ordered arbitrarily by the unsharded
    ``argpartition`` and deterministically by the shard merge, so parity is
    asserted where the ranking is well defined — which is every position that
    matters.
    """
    users = np.arange(index.num_users, dtype=np.int64)
    # Finite-score region for the masked path: no user's list may reach into
    # the -inf tail.
    max_degree = int(index.exclusion.counts().max())
    masked_k = max(1, min(TOP_K, index.num_items - max_degree))
    # Deep k on the unmasked path: larger than every shard under the largest
    # S, so local k-truncation and short/empty tail shards are exercised.
    deep_k = index.num_items

    oracle_masked = index.top_k(users, masked_k, exclude_train=True)
    oracle_deep = index.top_k(users, deep_k, exclude_train=False)

    comparisons = 0
    for num_shards in SHARD_COUNTS:
        for policy in POLICIES:
            sharded = ShardedInferenceIndex.from_index(
                index, num_shards, policy=policy)
            got = sharded.top_k(users, masked_k, exclude_train=True)
            assert np.array_equal(oracle_masked, got), (
                f"sharded top-{masked_k} (S={num_shards}, {policy}, masked) "
                f"diverges from the unsharded oracle")
            got = sharded.top_k(users, deep_k, exclude_train=False)
            assert np.array_equal(oracle_deep, got), (
                f"sharded top-{deep_k} (S={num_shards}, {policy}, unmasked) "
                f"diverges from the unsharded oracle")
            comparisons += 2
    return comparisons


def run_sharded_serving(datasets=None, repeats: int = 3):
    """Parity-check and time every (dataset, shard count, executor) cell."""
    rows = []
    for name in (datasets or _datasets()):
        index = _build_index(name)
        users = np.arange(index.num_users, dtype=np.int64)
        comparisons = check_parity(index)

        baseline = _time(lambda: index.top_k(users, TOP_K), repeats)
        for num_shards in SHARD_COUNTS:
            for executor, mode in ((SerialExecutor(), "serial"),
                                   (ThreadedExecutor(), "threads")):
                sharded = ShardedInferenceIndex.from_index(
                    index, num_shards, executor=executor)
                elapsed = _time(lambda: sharded.top_k(users, TOP_K), repeats)
                sharded.close()
                rows.append({
                    "dataset": name,
                    "users": int(index.num_users),
                    "items": int(index.num_items),
                    "shards": num_shards,
                    "mode": mode,
                    "unsharded_ms": baseline * 1e3,
                    "sharded_ms": elapsed * 1e3,
                    "users_per_s": index.num_users / elapsed,
                    "relative": baseline / elapsed,
                    "parity_checks": comparisons,
                })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'users':>6} {'items':>6} {'S':>3} "
              f"{'mode':>8} {'unsharded ms':>13} {'sharded ms':>11} "
              f"{'users/s':>10} {'rel':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['users']:>6d} {row['items']:>6d} "
            f"{row['shards']:>3d} {row['mode']:>8} "
            f"{row['unsharded_ms']:>13.2f} {row['sharded_ms']:>11.2f} "
            f"{row['users_per_s']:>10.0f} {row['relative']:>5.2f}x")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_sharded_serving", rows, preset=preset)


def test_sharded_serving():
    rows = run_sharded_serving()
    try:
        from .conftest import print_block
        print_block("Sharded serving — exact fan-out/merge vs single matrix",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_sharded_serving()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: bit-exact top-K parity across S={SHARD_COUNTS}, "
          f"policies={POLICIES}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
