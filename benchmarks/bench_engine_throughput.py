"""Benchmark — inference-engine throughput on the Table-2 configuration.

Times full-ranking evaluation (Recall@{10,20,50} / NDCG@{10,20,50}, the
Table II protocol) on the synthetic Table-2 presets twice:

* the **reference** path — the preserved per-user-loop evaluator
  (:class:`repro.eval.ReferenceRankingEvaluator`), and
* the **engine** path — the vectorised :class:`repro.eval.RankingEvaluator`
  routed through :mod:`repro.engine` (frozen inference index, flat-index
  masking, batched cumulative-DCG metrics).

Asserts that the two paths agree within 1e-9 on every metric and that the
engine path is at least ``MIN_SPEEDUP``× faster.  Environment knobs:

* ``REPRO_BENCH_DATASET`` — override the evaluated presets (e.g. ``tiny``
  for the CI smoke run; speedup is then reported but not asserted, since
  constant overheads dominate on toy sizes).

Run stand-alone with ``python benchmarks/bench_engine_throughput.py`` or via
pytest: ``pytest benchmarks/bench_engine_throughput.py -s``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.eval import RankingEvaluator, ReferenceRankingEvaluator  # noqa: E402
from repro.models import LightGCN  # noqa: E402

# Table-2 protocol: full ranking at K in {10, 20, 50} on Recall and NDCG.
KS = (10, 20, 50)
METRICS = ("recall", "ndcg")
TABLE2_DATASETS = ("mooc", "games")
MIN_SPEEDUP = 5.0
PARITY_ATOL = 1e-9


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return TABLE2_DATASETS


def _assert_speedup():
    """Only assert the 5x floor on the real Table-2 presets."""
    return os.environ.get("REPRO_BENCH_DATASET") is None


def _time(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_throughput(datasets=None, embedding_dim: int = 64,
                          num_layers: int = 3, repeats: int = 3):
    """Measure both evaluation paths; returns one row per dataset."""
    rows = []
    for name in (datasets or _datasets()):
        split = chronological_split(dataset_preset(name, seed=0))
        model = LightGCN(split, embedding_dim=embedding_dim,
                         num_layers=num_layers, seed=0)
        model.eval()

        engine_eval = RankingEvaluator(split, ks=KS, metrics=METRICS)
        reference_eval = ReferenceRankingEvaluator(split, ks=KS, metrics=METRICS)

        engine_result = engine_eval.evaluate(model)
        reference_result = reference_eval.evaluate(model)
        max_diff = max(
            abs(engine_result.values[key] - reference_result.values[key])
            for key in reference_result.values
        )

        engine_time = _time(lambda: engine_eval.evaluate(model), repeats)
        reference_time = _time(lambda: reference_eval.evaluate(model), max(1, repeats - 2))

        rows.append({
            "dataset": name,
            "users": engine_result.num_users_evaluated,
            "items": split.num_items,
            "reference_ms": reference_time * 1e3,
            "engine_ms": engine_time * 1e3,
            "speedup": reference_time / engine_time,
            "max_metric_diff": max_diff,
            "recall@20": engine_result.values["recall@20"],
            "ndcg@20": engine_result.values["ndcg@20"],
        })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'users':>6} {'items':>6} {'ref ms':>9} "
              f"{'engine ms':>10} {'speedup':>8} {'max diff':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['users']:>6d} {row['items']:>6d} "
            f"{row['reference_ms']:>9.2f} {row['engine_ms']:>10.2f} "
            f"{row['speedup']:>7.1f}x {row['max_metric_diff']:>10.2e}")
    return "\n".join(lines)


def _check(rows) -> None:
    for row in rows:
        assert np.isfinite(row["max_metric_diff"])
        assert row["max_metric_diff"] <= PARITY_ATOL, (
            f"{row['dataset']}: engine metrics diverge from the reference "
            f"path by {row['max_metric_diff']:.2e} (> {PARITY_ATOL})")
    if _assert_speedup():
        for row in rows:
            assert row["speedup"] >= MIN_SPEEDUP, (
                f"{row['dataset']}: engine evaluation only "
                f"{row['speedup']:.1f}x faster (target >= {MIN_SPEEDUP}x)")


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_engine_throughput", rows, preset=preset)


def test_engine_throughput():
    rows = run_engine_throughput()
    try:
        from .conftest import print_block
        print_block("Engine throughput — vectorised vs reference evaluation",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)
    _check(rows)


def main() -> int:
    rows = run_engine_throughput()
    print(format_rows(rows))
    _write_artifact(rows)
    _check(rows)
    print("OK: metric parity within 1e-9"
          + (f", speedup >= {MIN_SPEEDUP}x" if _assert_speedup() else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
