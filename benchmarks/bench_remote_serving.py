"""Benchmark — multi-host shard serving over sockets: parity + fault gates.

Freezes a trained index into a serving snapshot, launches one real
``repro shard-server`` *process* per shard on localhost, and serves through
``RecommendationService(snapshot=…, executor="remote")``, checking three
things:

* **Parity (the CI gate).**  For S ∈ {2, 4} and candidate_mode ∈ {None,
  int8}, remote serving over sockets must return *bit-exact* top-K lists
  (same ids, same order) as the serial in-memory oracle.  Any drift between
  the socket transport + merge and the single-matrix ranking fails the
  build.
* **Fault handling (also gated).**  A shard process killed mid-session must
  surface as a typed ``RemoteShardError`` — never a silently truncated or
  partial top-K — and a router pinned to a *different* snapshot file must be
  rejected at handshake time (stale shards fail closed).
* **Throughput.**  Full-user-batch top-K, timed remote vs serial.  On
  CI-sized presets the localhost socket round-trip dominates — the numbers
  are reported for trend tracking, not asserted (the remote tier pays off
  when the catalogue outgrows one host's memory, which no CI preset
  reaches).

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_remote_serving.py`` or via
pytest: ``pytest benchmarks/bench_remote_serving.py -s``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    InferenceIndex,
    RecommendationService,
    RemoteExecutor,
    RemoteShardError,
    save_snapshot,
)
from repro.models import LightGCN  # noqa: E402

SHARD_COUNTS = (2, 4)
MODES = (None, "int8")
DEFAULT_DATASETS = ("mooc",)
TOP_K = 10


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _build_index(name: str) -> InferenceIndex:
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return InferenceIndex.from_model(model, split)


def _launch_shard_servers(snapshot_path, num_shards: int):
    """One real ``repro shard-server`` process per shard, on localhost.

    Launching through the CLI (not in-process threads) makes this the same
    deployment shape as multi-host serving: separate interpreters whose only
    shared state is the snapshot file.  Returns ``(processes, addresses)``
    once every server has printed its bound ephemeral port.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    processes = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-server",
             str(snapshot_path), "--shard-id", str(shard_id),
             "--num-shards", str(num_shards)],
            stdout=subprocess.PIPE, text=True, env=env)
        for shard_id in range(num_shards)
    ]
    addresses = []
    for process in processes:
        address = None
        for line in process.stdout:
            if line.startswith("listening on "):
                address = line.strip().rsplit(" ", 1)[-1]
                break
        if address is None:
            _stop_servers(processes)
            raise AssertionError(
                "shard server exited before binding its port "
                f"(exit code {process.poll()})")
        addresses.append(address)
    return processes, addresses


def _stop_servers(processes) -> None:
    for process in processes:
        if process.poll() is None:
            process.kill()
    for process in processes:
        process.wait()
        if process.stdout is not None:
            process.stdout.close()


def check_fault_handling(snapshot_path, other_snapshot_path, users) -> dict:
    """Assert the remote tier fails closed; returns the checks performed.

    * Killing one of two shard processes mid-session must raise a typed
      ``RemoteShardError`` from the next request — the service must never
      hand back a ranking that silently lost that shard's items.
    * A router whose snapshot differs from the servers' must be rejected at
      handshake (snapshot-identity mismatch), before any payload is merged.
    """
    processes, addresses = _launch_shard_servers(snapshot_path, 2)
    try:
        with RecommendationService(snapshot=snapshot_path, executor="remote",
                                   shard_addresses=addresses) as service:
            executor = service.sharded.executor
            executor.max_retries = 1
            executor.retry_backoff = 0.01
            before = service.top_k(users, TOP_K)
            assert before.shape == (users.size, TOP_K), \
                "remote serving returned a malformed batch"
            processes[1].kill()
            processes[1].wait()
            try:
                after = service.top_k(users, TOP_K)
            except RemoteShardError:
                pass  # fail-closed: the typed error is the contract
            else:
                raise AssertionError(
                    "a killed shard produced a result instead of a typed "
                    f"RemoteShardError (shape {after.shape}) — remote "
                    "serving must fail closed, never truncate a merge")
    finally:
        _stop_servers(processes)

    # Stale-snapshot rejection: same geometry, different file content.
    processes, addresses = _launch_shard_servers(snapshot_path, 2)
    try:
        with RemoteExecutor(addresses, snapshot_path=other_snapshot_path,
                            max_retries=0) as executor:
            try:
                executor.fan_out("top_k", users[:1], 1, False, None, None)
            except RemoteShardError as error:
                assert "identity mismatch" in str(error), (
                    "stale shard was rejected for the wrong reason: "
                    f"{error}")
            else:
                raise AssertionError(
                    "a shard serving a different snapshot file passed the "
                    "handshake — stale shards must be rejected")
    finally:
        _stop_servers(processes)
    return {"killed_shard_typed_error": True, "stale_snapshot_rejected": True}


def run_remote_serving(datasets=None, repeats: int = 3):
    """Parity-check and time every (dataset, shard count, mode) cell."""
    rows = []
    for name in (datasets or _datasets()):
        index = _build_index(name)
        users = np.arange(index.num_users, dtype=np.int64)
        with tempfile.TemporaryDirectory(prefix="repro-bench-remote-") as tmp:
            snapshot_path = save_snapshot(Path(tmp) / "serve.snap", index,
                                          candidate_modes=("int8",))
            # A second snapshot with different content for the stale-shard
            # rejection gate (same catalogue, different embedding bytes).
            other = LightGCN(chronological_split(dataset_preset(name, seed=0)),
                             embedding_dim=64, num_layers=3, seed=1)
            other.eval()
            other_path = save_snapshot(
                Path(tmp) / "other.snap",
                InferenceIndex.from_model(
                    other, chronological_split(dataset_preset(name, seed=0))),
                candidate_modes=("int8",))

            fault = check_fault_handling(snapshot_path, other_path, users[:16])

            for num_shards in SHARD_COUNTS:
                processes, addresses = _launch_shard_servers(snapshot_path,
                                                             num_shards)
                try:
                    for mode in MODES:
                        with RecommendationService(
                                snapshot=snapshot_path,
                                candidate_mode=mode) as oracle_service:
                            oracle = oracle_service.top_k(users, TOP_K)
                            serial_s = _time(
                                lambda: oracle_service.top_k(users, TOP_K),
                                repeats)
                        with RecommendationService(
                                snapshot=snapshot_path, executor="remote",
                                shard_addresses=addresses,
                                candidate_mode=mode) as service:
                            served = service.top_k(users, TOP_K)
                            assert np.array_equal(oracle, served), (
                                f"remote top-{TOP_K} (S={num_shards}, "
                                f"mode={mode}) diverges from the serial "
                                f"oracle")
                            remote_s = _time(
                                lambda: service.top_k(users, TOP_K), repeats)
                        rows.append({
                            "dataset": name,
                            "users": int(index.num_users),
                            "items": int(index.num_items),
                            "shards": num_shards,
                            "mode": mode or "exact",
                            "serial_ms": serial_s * 1e3,
                            "remote_ms": remote_s * 1e3,
                            "users_per_s": index.num_users / remote_s,
                            "relative": serial_s / remote_s,
                            "parity": True,
                            **fault,
                        })
                finally:
                    _stop_servers(processes)
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'users':>6} {'items':>6} {'S':>3} "
              f"{'mode':>6} {'serial ms':>10} {'remote ms':>10} "
              f"{'users/s':>10} {'rel':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['users']:>6d} {row['items']:>6d} "
            f"{row['shards']:>3d} {row['mode']:>6} "
            f"{row['serial_ms']:>10.2f} {row['remote_ms']:>10.2f} "
            f"{row['users_per_s']:>10.0f} {row['relative']:>5.2f}x")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_remote_serving", rows, preset=preset)


def test_remote_serving():
    rows = run_remote_serving()
    try:
        from .conftest import print_block
        print_block("Remote serving — bit-exact socket fan-out vs serial "
                    "oracle", format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_remote_serving()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: bit-exact remote/serial parity across S={SHARD_COUNTS} x "
          f"modes={MODES}; killed shard raised a typed error; stale "
          f"snapshot rejected at handshake")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
