"""Render a run's benchmark JSON artifacts as one markdown trend table.

CI's ``bench-trend`` job downloads every ``bench-json-*`` artifact of the
run into one directory (``actions/download-artifact`` with
``merge-multiple``) and pipes this script's output into
``$GITHUB_STEP_SUMMARY``, so reviewers see each benchmark's key metric —
and the floor it is gated against — without downloading anything.

Usage::

    python benchmarks/trend_summary.py bench-artifacts >> "$GITHUB_STEP_SUMMARY"

The table is intentionally lossy: one or two headline numbers per
benchmark, aggregated across that benchmark's result rows (best throughput,
worst latency, …).  The full per-cell rows stay in the JSON artifacts; the
hard gates stay in the benchmarks themselves — a floor shown here is
*documentation* of the gate, not the gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: benchmark -> [(label, row key, aggregation, gate/floor description)].
#: Aggregations: ``max``/``min``/``mean`` over the numeric values of that
#: key across result rows, ``all`` for booleans (yes iff every row is
#: truthy).  Keys missing from every row are skipped, so a benchmark can
#: evolve its schema without breaking the summary.
KEY_METRICS = {
    "bench_engine_throughput": [
        ("speedup vs reference", "speedup", "max", ">=5x (full presets)"),
        ("metric drift", "max_metric_diff", "max", "<= 1e-9"),
    ],
    "bench_training_throughput": [
        ("pipeline speedup", "total_speedup", "max", ">=5x (full presets)"),
        ("sampler TV distance", "worst_tv", "max", "distribution parity"),
    ],
    "bench_sharded_serving": [
        ("best users/s", "users_per_s", "max", "bit-exact parity gated"),
        ("parity comparisons", "parity_checks", "max", "all bit-exact"),
    ],
    "bench_candidate_serving": [
        ("certified fraction", "certified_frac", "min",
         "recall 1.0 on certified users"),
        ("certified recall", "recall", "min", "= 1.0"),
        ("throughput vs exact", "throughput_ratio", "max",
         "reported (full presets pay off)"),
    ],
    "bench_online_updates": [
        ("ingest pairs/s", "ingest_pairs_per_sec", "max",
         "absolute throughput floor"),
        ("speedup vs rebuild", "speedup_vs_rebuild", "max",
         ">=1x (full presets)"),
    ],
    "bench_snapshot_serving": [
        ("mmap load speedup", "load_speedup", "min", ">=10x vs freeze"),
        ("first request ms", "first_request_ms", "max",
         "within latency budget"),
    ],
    "bench_async_frontend": [
        ("coalesced speedup", "speedup", "min", ">=2x vs naive"),
        ("p99 latency ms", "p99_ms", "max", "<= window budget"),
    ],
    "bench_remote_serving": [
        ("remote users/s", "users_per_s", "max", "bit-exact parity gated"),
        ("killed shard fails closed", "killed_shard_typed_error", "all",
         "typed RemoteShardError"),
        ("stale snapshot rejected", "stale_snapshot_rejected", "all",
         "handshake fails closed"),
    ],
    "bench_observability": [
        ("telemetry overhead %", "overhead_pct", "max", "<= 5%"),
        ("p99 with telemetry ms", "p99_on_ms", "max", "reported"),
        ("p99 telemetry off ms", "p99_off_ms", "max", "reported"),
        ("on/off serving parity", "parity", "all", "bit-identical"),
        ("shard spans stitched", "shard_spans", "max", ">= 1 remote span"),
    ],
    "bench_fault_tolerance": [
        ("availability under kills", "availability", "min",
         "= 1.0 while a replica survives"),
        ("failovers survived", "failovers", "max",
         ">= 1 per killed replica, bit-exact"),
        ("WAL recovery s", "recovery_s", "max", "within recovery budget"),
        ("WAL recovery parity", "wal_parity", "all",
         "bit-identical to uncrashed oracle"),
        ("dead shard fails closed", "killed_shard_typed_error", "all",
         "typed RemoteShardError"),
    ],
}


def _aggregate(values, how: str):
    if how == "all":
        return all(bool(value) for value in values)
    numbers = [float(value) for value in values]
    if how == "max":
        return max(numbers)
    if how == "min":
        return min(numbers)
    if how == "mean":
        return sum(numbers) / len(numbers)
    raise ValueError(f"unknown aggregation {how!r}")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if value == int(value):
        return str(int(value))
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.2e}"


def load_documents(directory: Path):
    """Parsed artifact documents in the directory, sorted by benchmark."""
    documents = []
    for path in sorted(directory.glob("*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"[trend] skipping {path.name}: {error}", file=sys.stderr)
            continue
        if isinstance(document, dict) and "benchmark" in document:
            documents.append(document)
        else:
            print(f"[trend] skipping {path.name}: not a benchmark artifact",
                  file=sys.stderr)
    return documents


def build_table(documents) -> str:
    """The job-summary markdown for a list of artifact documents."""
    lines = ["### Benchmark trend", ""]
    if not documents:
        lines.append("_No benchmark artifacts found for this run._")
        return "\n".join(lines)
    presets = sorted({str(doc.get("preset")) for doc in documents})
    sha = next((doc.get("git_sha") for doc in documents
                if doc.get("git_sha")), None)
    lines.append(f"preset: `{', '.join(presets)}`"
                 + (f" · commit `{sha[:12]}`" if sha else ""))
    lines.append("")
    lines.append("| benchmark | key metric | value | floor / gate |")
    lines.append("|---|---|---|---|")
    for document in documents:
        name = document["benchmark"]
        rows = document.get("results") or []
        if isinstance(rows, dict):
            rows = [rows]
        emitted = 0
        for label, key, how, floor in KEY_METRICS.get(name, ()):
            values = [row[key] for row in rows
                      if isinstance(row, dict) and row.get(key) is not None]
            if not values:
                continue
            value = _aggregate(values, how)
            lines.append(f"| {name.removeprefix('bench_')} | {label} "
                         f"({how}) | {_format_value(value)} | {floor} |")
            emitted += 1
        if not emitted:
            # Unknown benchmark (or schema drift): still show it ran.
            lines.append(f"| {name.removeprefix('bench_')} | result rows | "
                         f"{len(rows)} | — |")
    return "\n".join(lines)


def main(argv) -> int:
    if len(argv) != 2:
        print("usage: trend_summary.py <artifact-directory>", file=sys.stderr)
        return 2
    directory = Path(argv[1])
    if not directory.is_dir():
        print(f"[trend] no artifact directory at {directory}",
              file=sys.stderr)
        print(build_table([]))
        return 0
    print(build_table(load_documents(directory)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
