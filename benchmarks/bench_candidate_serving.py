"""Benchmark — two-stage candidate serving: certificate gate + cost profile.

Serves batched top-K through the quantised-candidates + exact-rescoring
pipeline (:mod:`repro.engine.candidates`) in both precisions (``int8``,
``float32``) and under item sharding S in {1, 4}, against the exact float64
single-stage path as the oracle, and gates three things:

* **Certified parity (the CI gate).**  Whenever a batch's certificate fires
  (the best pruned upper bound fell below the k-th rescored score), the
  two-stage result must achieve recall@k == 1.0 against the exact oracle —
  a certificate that fires on a wrong result is a soundness bug and fails
  the build.  Uncertified batches report their measured recall.
* **Certificate usefulness.**  float32-mode bounds are within a hair of
  machine precision, so on every preset they must certify (nearly) every
  user — a certificate that never fires is vacuous.
* **Serving cost.**  Per ISSUE gate: the pipeline must beat the exact
  float64 path by >= 2x top-K throughput or >= 3x snapshot memory in at
  least one mode.  int8 snapshots are ~6x smaller at dim 64 (1 code byte
  per weight + two float vectors per item), so the gate holds deterministically;
  throughput is additionally reported per mode for trend tracking.

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_candidate_serving.py`` or via
pytest: ``pytest benchmarks/bench_candidate_serving.py -s``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    CandidateIndex,
    InferenceIndex,
    ShardedCandidateIndex,
    ShardedInferenceIndex,
)
from repro.models import LightGCN  # noqa: E402

MODES = ("int8", "float32")
SHARD_COUNTS = (1, 4)
DEFAULT_DATASETS = ("mooc", "games")
TOP_K = 10
CANDIDATE_FACTOR = 4

MIN_THROUGHPUT_RATIO = 2.0   # two-stage vs exact float64, any mode ...
MIN_MEMORY_REDUCTION = 3.0   # ... OR quantised vs float64 snapshot, any mode
MIN_FLOAT32_CERTIFIED = 0.9  # float32 bounds must certify nearly everyone


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _build_index(name: str) -> InferenceIndex:
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return InferenceIndex.from_model(model, split)


def _recall(got: np.ndarray, oracle: np.ndarray) -> np.ndarray:
    """Per-user fraction of oracle top-K ids recovered by the pipeline."""
    hits = (got[:, :, None] == oracle[:, None, :]).any(axis=1)
    return hits.mean(axis=1)


def run_candidate_serving(datasets=None, repeats: int = 3):
    """Certificate-check and profile every (dataset, mode, shards) cell."""
    rows = []
    for name in (datasets or _datasets()):
        index = _build_index(name)
        users = np.arange(index.num_users, dtype=np.int64)
        oracle = index.top_k(users, TOP_K)
        exact_s = _time(lambda: index.top_k(users, TOP_K), repeats)
        exact_bytes = index.item_embeddings.nbytes

        for mode in MODES:
            for num_shards in SHARD_COUNTS:
                if num_shards == 1:
                    backend = CandidateIndex(index, mode, CANDIDATE_FACTOR)
                else:
                    backend = ShardedCandidateIndex(
                        ShardedInferenceIndex.from_index(index, num_shards),
                        mode, CANDIDATE_FACTOR)
                ids, certificate = backend.top_k_with_certificate(users, TOP_K)
                recall = _recall(ids, oracle)

                certified = certificate.certified
                # THE gate: a fired certificate guarantees exhaustive-search
                # parity.  recall@k == 1.0 on every certified user, always.
                assert recall[certified].size == 0 or (
                    recall[certified] == 1.0).all(), (
                    f"{name}/{mode}/S={num_shards}: certificate fired on a "
                    f"result with recall@{TOP_K} < 1.0 — bound soundness bug")
                uncertified_recall = (float(recall[~certified].mean())
                                      if (~certified).any() else None)

                elapsed = _time(lambda: backend.top_k(users, TOP_K), repeats)
                rows.append({
                    "dataset": name,
                    "users": int(index.num_users),
                    "items": int(index.num_items),
                    "mode": mode,
                    "shards": num_shards,
                    "factor": CANDIDATE_FACTOR,
                    "k": TOP_K,
                    "certified_frac": float(certificate.fraction_certified),
                    "recall": float(recall.mean()),
                    "uncertified_recall": uncertified_recall,
                    "exact_ms": exact_s * 1e3,
                    "two_stage_ms": elapsed * 1e3,
                    "throughput_ratio": exact_s / elapsed,
                    "exact_bytes": int(exact_bytes),
                    "quantized_bytes": int(backend.quantized_nbytes),
                    "memory_reduction": exact_bytes / backend.quantized_nbytes,
                })

        # float32 bounds are near machine precision; if they cannot certify
        # this preset the certificate machinery is broken (vacuity gate).
        for row in rows:
            if row["dataset"] == name and row["mode"] == "float32":
                assert row["certified_frac"] >= MIN_FLOAT32_CERTIFIED, (
                    f"{name}/float32/S={row['shards']}: only "
                    f"{row['certified_frac']:.1%} of users certified — "
                    f"float32 bounds should certify nearly everyone")

        best_throughput = max(row["throughput_ratio"] for row in rows
                              if row["dataset"] == name)
        best_memory = max(row["memory_reduction"] for row in rows
                          if row["dataset"] == name)
        assert (best_throughput >= MIN_THROUGHPUT_RATIO
                or best_memory >= MIN_MEMORY_REDUCTION), (
            f"{name}: two-stage serving won neither the throughput gate "
            f"(best {best_throughput:.2f}x, need {MIN_THROUGHPUT_RATIO}x) nor "
            f"the snapshot-memory gate (best {best_memory:.2f}x, need "
            f"{MIN_MEMORY_REDUCTION}x)")
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'mode':>8} {'S':>3} {'cert%':>6} "
              f"{'recall':>7} {'exact ms':>9} {'2stage ms':>10} "
              f"{'thru':>6} {'mem':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['mode']:>8} {row['shards']:>3d} "
            f"{row['certified_frac']:>6.1%} {row['recall']:>7.4f} "
            f"{row['exact_ms']:>9.2f} {row['two_stage_ms']:>10.2f} "
            f"{row['throughput_ratio']:>5.2f}x {row['memory_reduction']:>5.2f}x")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_candidate_serving", rows, preset=preset)


def test_candidate_serving():
    rows = run_candidate_serving()
    try:
        from .conftest import print_block
        print_block("Two-stage candidate serving — certified quantised top-K",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_candidate_serving()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: certified batches exact, modes={MODES}, shards={SHARD_COUNTS}, "
          f"factor={CANDIDATE_FACTOR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
