"""Benchmark — training-pipeline throughput on the Table-2 configuration.

Times one epoch's worth of training-data work on the synthetic Table-2
presets twice:

* the **reference** path — the preserved pure-Python loop implementations
  (:class:`repro.data.ReferenceNegativeSampler`,
  :class:`repro.data.ReferenceBprBatchIterator`,
  :class:`repro.data.ReferenceUserBatchIterator`), and
* the **pipeline** path — the vectorized :mod:`repro.data.pipeline`
  subsystem (flat-key CSR negative sampling via
  :meth:`repro.engine.UserItemIndex.contains`, one-scatter dense user rows).

Asserts a ≥ ``MIN_SPEEDUP``× speedup of the vectorized sampler and of the
combined batch-iterator epoch, plus distributional parity:

* negatives produced by the pipeline never collide with training positives;
* the marginal over each probed user's non-positive items is uniform, and
  matches the reference sampler's empirical marginal in total variation.

Environment knobs:

* ``REPRO_BENCH_DATASET`` — override the presets (e.g. ``tiny`` for the CI
  smoke run; speedups are then reported but not asserted, since constant
  overheads dominate on toy sizes).

Run stand-alone with ``python benchmarks/bench_training_throughput.py`` or
via pytest: ``pytest benchmarks/bench_training_throughput.py -s``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import (  # noqa: E402
    BatchSpec,
    BprPipeline,
    NegativeSampler,
    ReferenceBprBatchIterator,
    ReferenceNegativeSampler,
    ReferenceUserBatchIterator,
    UserRowPipeline,
    chronological_split,
    dataset_preset,
)
from repro.engine import UserItemIndex  # noqa: E402

TABLE2_DATASETS = ("mooc", "games")
MIN_SPEEDUP = 5.0
BPR_BATCH_SIZE = 2048
ROW_BATCH_SIZE = 256
NUM_NEGATIVES = 4
#: Draws per probed user for the marginal-distribution parity check.
PARITY_DRAWS = 40_000
#: Total-variation tolerance between the two samplers' empirical marginals
#: (expected TV of two size-N multinomials over K cells is ~sqrt(K/N)).
PARITY_TV_TOL = 0.15


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return TABLE2_DATASETS


def _assert_speedup():
    """Only assert the 5x floor on the real Table-2 presets."""
    return os.environ.get("REPRO_BENCH_DATASET") is None


def _time(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _drain(iterable) -> None:
    for _ in iterable:
        pass


# --------------------------------------------------------------------------- #
# Parity
# --------------------------------------------------------------------------- #
def check_sampling_parity(split, seed: int = 0) -> float:
    """Distribution checks of the vectorized sampler; returns the worst TV.

    1. No sampled negative may be a training positive (exact, full epoch).
    2. For the highest-degree users, the empirical marginal of the
       vectorized sampler over non-positive items must (a) be uniform and
       (b) match the reference loop sampler's marginal in total variation.
    """
    index = UserItemIndex.from_split(split, "train")
    vectorized = NegativeSampler.from_split(split, rng=np.random.default_rng(seed))
    reference = ReferenceNegativeSampler.from_split(split, rng=np.random.default_rng(seed + 1))
    positive_sets = split.train_positive_sets()

    # (1) exact no-collision over one epoch of multi-negative draws.
    negatives = vectorized.sample(split.train_users, num_negatives=NUM_NEGATIVES)
    assert not index.contains(split.train_users[:, None], negatives).any(), \
        "vectorized sampler produced a negative that is a training positive"

    # (2) marginal parity on the densest users (worst case for rejection).
    degrees = index.counts()
    probe_users = np.argsort(-degrees)[:3]
    worst_tv = 0.0
    for user in probe_users:
        complement = split.num_items - int(degrees[user])
        if complement <= 0:
            continue
        repeated = np.full(PARITY_DRAWS, user, dtype=np.int64)
        vec_draws = vectorized.sample(repeated)
        ref_draws = reference.sample(repeated)
        assert not any(int(item) in positive_sets[int(user)] for item in vec_draws)

        vec_freq = np.bincount(vec_draws, minlength=split.num_items) / PARITY_DRAWS
        ref_freq = np.bincount(ref_draws, minlength=split.num_items) / PARITY_DRAWS
        uniform = np.zeros(split.num_items)
        non_positives = np.setdiff1d(np.arange(split.num_items), index.items_for(int(user)))
        uniform[non_positives] = 1.0 / complement

        tv_vs_uniform = 0.5 * np.abs(vec_freq - uniform).sum()
        tv_vs_reference = 0.5 * np.abs(vec_freq - ref_freq).sum()
        worst_tv = max(worst_tv, tv_vs_uniform, tv_vs_reference)
        assert tv_vs_uniform <= PARITY_TV_TOL, (
            f"user {user}: vectorized marginal deviates from uniform by "
            f"TV={tv_vs_uniform:.3f} (> {PARITY_TV_TOL})")
        assert tv_vs_reference <= PARITY_TV_TOL, (
            f"user {user}: vectorized vs reference marginals differ by "
            f"TV={tv_vs_reference:.3f} (> {PARITY_TV_TOL})")
    return worst_tv


# --------------------------------------------------------------------------- #
# Throughput
# --------------------------------------------------------------------------- #
def run_training_throughput(datasets=None, repeats: int = 3):
    """Measure both training-data paths; returns one row per dataset."""
    rows = []
    for name in (datasets or _datasets()):
        split = chronological_split(dataset_preset(name, seed=0))
        worst_tv = check_sampling_parity(split)

        epoch_users = split.train_users
        vec_sampler = NegativeSampler.from_split(split, rng=np.random.default_rng(0))
        ref_sampler = ReferenceNegativeSampler.from_split(split, rng=np.random.default_rng(0))
        vec_sampler_time = _time(
            lambda: vec_sampler.sample(epoch_users, NUM_NEGATIVES), repeats)
        ref_sampler_time = _time(
            lambda: ref_sampler.sample(epoch_users, NUM_NEGATIVES), repeats)

        vec_bpr = BprPipeline(split, BatchSpec(kind="bpr", batch_size=BPR_BATCH_SIZE),
                              rng=np.random.default_rng(0))
        ref_bpr = ReferenceBprBatchIterator(split, batch_size=BPR_BATCH_SIZE,
                                            rng=np.random.default_rng(0))
        vec_bpr_time = _time(lambda: _drain(vec_bpr), repeats)
        ref_bpr_time = _time(lambda: _drain(ref_bpr), repeats)

        vec_rows = UserRowPipeline(split, BatchSpec(kind="user_rows",
                                                    batch_size=ROW_BATCH_SIZE),
                                   rng=np.random.default_rng(0))
        ref_rows = ReferenceUserBatchIterator(split, batch_size=ROW_BATCH_SIZE,
                                              rng=np.random.default_rng(0))
        vec_rows_time = _time(lambda: _drain(vec_rows), repeats)
        ref_rows_time = _time(lambda: _drain(ref_rows), repeats)

        reference_total = ref_sampler_time + ref_bpr_time + ref_rows_time
        pipeline_total = vec_sampler_time + vec_bpr_time + vec_rows_time
        rows.append({
            "dataset": name,
            "interactions": split.num_train,
            "users": split.num_users,
            "items": split.num_items,
            "sampler_speedup": ref_sampler_time / vec_sampler_time,
            "bpr_epoch_speedup": ref_bpr_time / vec_bpr_time,
            "row_epoch_speedup": ref_rows_time / vec_rows_time,
            "reference_ms": reference_total * 1e3,
            "pipeline_ms": pipeline_total * 1e3,
            "total_speedup": reference_total / pipeline_total,
            "worst_tv": worst_tv,
        })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'nnz':>6} {'sampler':>9} {'bpr ep':>8} "
              f"{'rows ep':>8} {'ref ms':>9} {'pipe ms':>9} {'total':>8} {'TV':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['interactions']:>6d} "
            f"{row['sampler_speedup']:>8.1f}x {row['bpr_epoch_speedup']:>7.1f}x "
            f"{row['row_epoch_speedup']:>7.1f}x {row['reference_ms']:>9.2f} "
            f"{row['pipeline_ms']:>9.2f} {row['total_speedup']:>7.1f}x "
            f"{row['worst_tv']:>7.3f}")
    return "\n".join(lines)


def _check(rows) -> None:
    if not _assert_speedup():
        return
    for row in rows:
        assert row["sampler_speedup"] >= MIN_SPEEDUP, (
            f"{row['dataset']}: vectorized sampler only "
            f"{row['sampler_speedup']:.1f}x faster (target >= {MIN_SPEEDUP}x)")
        assert row["total_speedup"] >= MIN_SPEEDUP, (
            f"{row['dataset']}: pipeline epoch only "
            f"{row['total_speedup']:.1f}x faster (target >= {MIN_SPEEDUP}x)")


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_training_throughput", rows, preset=preset)


def test_training_throughput():
    rows = run_training_throughput()
    try:
        from .conftest import print_block
        print_block("Training throughput — vectorized pipeline vs reference loops",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)
    _check(rows)


def main() -> int:
    rows = run_training_throughput()
    print(format_rows(rows))
    _write_artifact(rows)
    _check(rows)
    print("OK: sampling parity within tolerance"
          + (f", speedup >= {MIN_SPEEDUP}x" if _assert_speedup() else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
