"""Ablation benchmark — quantitative over-smoothing diagnostics (Propositions 1-2).

The paper argues theoretically that LayerGCN alleviates LightGCN's
over-smoothing.  This benchmark measures it directly on trained models with
the diagnostics from :mod:`repro.analysis`: mean average (cosine) distance
between connected nodes, embedding variance, neighbour divergence (the Eq. 15
quantity) and drift from the ego layer — for both models at shallow and deep
settings.
"""


from repro.analysis import smoothing_report
from repro.experiments import format_table, load_splits
from repro.models import build_model
from repro.training import Trainer

from .conftest import print_block

DEPTHS = (2, 6)


def _run(scale):
    split = load_splits(["mooc"], scale=scale)["mooc"]
    rows = []
    reports = {}
    for model_name in ("lightgcn", "layergcn"):
        for depth in DEPTHS:
            kwargs = {"num_layers": depth}
            if model_name == "layergcn":
                kwargs.update({"dropout_ratio": 0.1, "edge_dropout": "degreedrop"})
            model = build_model(model_name, split, embedding_dim=scale.embedding_dim,
                                batch_size=scale.batch_size, seed=scale.seed, **kwargs)
            Trainer(model, split, scale.trainer_config()).fit()
            report = smoothing_report(model, name=f"{model_name}-{depth}")
            reports[(model_name, depth)] = report
            rows.append({"model": model_name, "layers": depth, **{
                "mad": report.mad,
                "variance": report.variance,
                "neighbor_distance": report.neighbor_distance,
                "ego_distance": report.ego_distance,
            }})
    return rows, reports


def test_ablation_oversmoothing_diagnostics(benchmark, bench_scale):
    rows, reports = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    print_block("Ablation — over-smoothing diagnostics (trained models, MOOC)",
                format_table(rows, ["model", "layers", "mad", "variance",
                                    "neighbor_distance", "ego_distance"]))

    # Shape checks tied to the paper's claims:
    # 1. Deep LightGCN is smoother (lower MAD) than shallow LightGCN.
    assert reports[("lightgcn", 6)].mad <= reports[("lightgcn", 2)].mad * 1.05
    # 2. At the deep setting, LayerGCN keeps connected nodes at least as
    #    distinguishable as LightGCN does (Proposition 2).
    assert reports[("layergcn", 6)].mad >= reports[("lightgcn", 6)].mad * 0.8
