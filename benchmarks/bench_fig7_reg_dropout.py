"""Benchmark E11 — Fig. 7: regularisation coefficient vs edge-dropout ratio grid.

Grids λ against the dropout ratio for LayerGCN on the dense preset and prints
the R@50 / N@50 heat maps.  The paper reports the best cells around
λ ∈ {1e-3, 1e-2} with a low dropout ratio on MOOC, and degradation at the
strongest regularisation (λ = 0.1).
"""

from repro.experiments import best_cell, format_grid, run_hyperparameter_grid

from .conftest import print_block

LAMBDAS = (1e-4, 1e-3, 1e-1)
RATIOS = (0.0, 0.1, 0.2)


def test_fig7_regularization_dropout_grid(benchmark, bench_scale):
    cells = benchmark.pedantic(
        lambda: run_hyperparameter_grid(dataset="mooc", lambdas=LAMBDAS,
                                        dropout_ratios=RATIOS, scale=bench_scale),
        rounds=1, iterations=1)

    body = format_grid(cells, metric="recall@50") + "\n\n" + format_grid(cells, metric="ndcg@50")
    best = best_cell(cells, metric="recall@50")
    body += (f"\n\nbest cell: lambda={best['lambda']:g}, "
             f"dropout={best['dropout_ratio']}, recall@50={best['recall@50']:.4f}")
    print_block("Fig. 7 — λ x dropout-ratio grid (LayerGCN, MOOC)", body)

    assert len(cells) == len(LAMBDAS) * len(RATIOS)
    # Shape check from the paper: the heaviest regularisation is never the best cell.
    assert best["lambda"] < 1e-1
