"""Benchmark E6 — Fig. 1: learnable layer weights collapse onto the ego layer.

A 4-layer LightGCN with learnable softmax weights over layer embeddings is
trained on the dense preset; the per-epoch weight trajectory is printed.  The
paper's observation is that the ego-layer weight grows to dominate the others,
which motivates LayerGCN's decision to drop the ego layer from the readout.
"""

import numpy as np

from repro.experiments import run_weight_collapse, summarize_trajectory

from .conftest import print_block


def test_fig1_layer_weight_collapse(benchmark, bench_scale):
    scale = bench_scale
    result = benchmark.pedantic(
        lambda: run_weight_collapse(dataset="mooc", num_layers=4, scale=scale),
        rounds=1, iterations=1)

    labels = ["ego"] + [f"{i}-hop" for i in range(1, result["num_layers"] + 1)]
    print_block(
        "Fig. 1 — learnable layer weights per epoch (WeightedLightGCN, MOOC)",
        summarize_trajectory(result["trajectory"], labels)
        + f"\n\nego weight: {result['ego_weight_initial']:.4f} -> {result['ego_weight_final']:.4f}")

    trajectory = result["trajectory"]
    assert trajectory.shape[1] == 5
    np.testing.assert_allclose(trajectory.sum(axis=1), np.ones(len(trajectory)), atol=1e-8)
    # Shape check: the ego layer's weight does not shrink during training (the
    # paper reports it growing to dominate all hidden layers).
    assert result["ego_weight_final"] >= result["ego_weight_initial"] - 0.02
