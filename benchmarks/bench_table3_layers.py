"""Benchmark E3 — Table III: LayerGCN (4 layers) vs LightGCN (1-4 layers) on MOOC.

The paper's finding: a 4-layer LayerGCN beats every LightGCN depth, while
LightGCN itself peaks at a shallow depth because of over-smoothing.
"""

from repro.experiments import format_table3, run_table3

from .conftest import print_block


def test_table3_layer_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table3(dataset="mooc", lightgcn_layers=(1, 2, 3, 4),
                           layergcn_layers=4, scale=bench_scale),
        rounds=1, iterations=1)
    print_block("Table III — accuracy vs number of layers (MOOC)", format_table3(rows))

    layergcn = next(row for row in rows if row["model"].startswith("LayerGCN"))
    lightgcn_rows = [row for row in rows if row["model"].startswith("LightGCN")]
    best_lightgcn_r20 = max(row["recall@20"] for row in lightgcn_rows)
    # Shape check: the 4-layer LayerGCN is at least competitive with the best
    # LightGCN depth (the paper reports a clear win).
    assert layergcn["recall@20"] >= best_lightgcn_r20 * 0.85
