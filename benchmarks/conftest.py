"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Each benchmark trains the involved
models once (``rounds=1``) and prints the resulting rows/series so the output
can be compared with the paper side by side; EXPERIMENTS.md records that
comparison.

The ``BENCH_SCALE`` below balances fidelity and wall-clock time: models train
for a few dozen epochs on the scaled-down synthetic presets, which is enough
for the qualitative orderings (who wins, where crossovers happen) to emerge.
Set the environment variable ``REPRO_BENCH_SCALE=full`` for a heavier run.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make the src/ layout importable even without an installed package, so the
# benchmark harness works in a fresh checkout (`pip install -e .` offline can
# be unavailable; see README).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentScale  # noqa: E402


def _bench_scale() -> ExperimentScale:
    mode = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if mode == "full":
        return ExperimentScale.full()
    if mode == "quick":
        return ExperimentScale.quick()
    # Default benchmark scale: small embeddings, a couple dozen epochs.
    scale = ExperimentScale(embedding_dim=32, epochs=25, batch_size=512,
                            learning_rate=0.005, dataset_scale=0.6)
    return scale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return _bench_scale()


def print_block(title: str, body: str) -> None:
    """Uniform pretty-printing of benchmark outputs."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
