"""Benchmark E7 — Fig. 3: convergence of DegreeDrop vs DropEdge.

(a) best validation epoch per edge-dropout ratio for both pruning strategies;
(b) summed batch-loss curves at a high dropout ratio.

The paper's finding: DegreeDrop converges in fewer epochs than DropEdge at
every ratio and its loss curve descends faster from the first epochs.
"""

import numpy as np

from repro.experiments import format_table, run_convergence_sweep, run_loss_curves

from .conftest import print_block

RATIOS = (0.2, 0.5, 0.7)


def test_fig3a_best_epoch_per_ratio(benchmark, bench_scale):
    scale = bench_scale
    rows = benchmark.pedantic(
        lambda: run_convergence_sweep(dataset="mooc", ratios=RATIOS, scale=scale),
        rounds=1, iterations=1)
    print_block("Fig. 3(a) — best epoch per edge-dropout ratio (MOOC)",
                format_table(rows, ["dropout_type", "dropout_ratio", "best_epoch",
                                    "best_valid_score", "recall@20"]))

    def mean_best_epoch(dropout_type):
        values = [row["best_epoch"] for row in rows if row["dropout_type"] == dropout_type]
        return float(np.mean(values))

    # Shape check: DegreeDrop needs no more epochs than DropEdge on average
    # (the paper reports ~39% fewer).
    assert mean_best_epoch("degreedrop") <= mean_best_epoch("dropedge") + 2


def test_fig3b_loss_curves(benchmark, bench_scale):
    curves = benchmark.pedantic(
        lambda: run_loss_curves(dataset="mooc", dropout_ratio=0.7, scale=bench_scale),
        rounds=1, iterations=1)

    lines = ["epoch  dropedge        degreedrop"]
    for epoch, (a, b) in enumerate(zip(curves["dropedge"], curves["degreedrop"]), start=1):
        lines.append(f"{epoch:5d}  {a:14.4f}  {b:14.4f}")
    print_block("Fig. 3(b) — summed batch loss per epoch at dropout ratio 0.7 (MOOC)",
                "\n".join(lines))

    # Both losses must decrease overall.
    for key, series in curves.items():
        assert series[-1] < series[0], f"{key} loss did not decrease"
