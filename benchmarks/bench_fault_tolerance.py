"""Benchmark — fault-tolerant serving: replica failover + WAL crash recovery.

Builds a serving snapshot, spreads it over 2 shards x 2 replica *processes*
(true process isolation via ``spawn_shard_server``: a killed replica is a
dead PID, not a closed socket), and gates three availability claims:

* **Failover (gated).**  With one replica of every shard killed mid-traffic,
  every request must still succeed (availability 1.0) and every answer must
  stay *bit-exact* with the serial in-memory oracle — failover never changes
  results, it only changes which replica computes them.  At least one
  failover per killed shard must actually have happened (the gate proves the
  faults were real, not that the kills missed).
* **Fail-closed (gated).**  Once a shard's *entire* replica set is dead, the
  next request must raise a typed ``RemoteShardError`` — never a silently
  truncated merge.
* **WAL recovery (gated).**  Ingest batches into a WAL-backed online
  service, crash it mid-append (a deterministic torn write from a seeded
  ``FaultPlan``), then recover by constructing a fresh service over the same
  log.  Every *acknowledged* batch must be replayed — serving bit-identical
  to an uncrashed oracle — the torn batch must be dropped, and recovery must
  finish inside ``RECOVERY_BUDGET_S``.

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_fault_tolerance.py`` or via
pytest: ``pytest benchmarks/bench_fault_tolerance.py -s``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    FaultPlan,
    InferenceIndex,
    OnlineRecommendationService,
    RecommendationService,
    RemoteShardError,
    WalTornWrite,
    save_snapshot,
    spawn_shard_server,
)
from repro.models import LightGCN  # noqa: E402

NUM_SHARDS = 2
REPLICAS_PER_SHARD = 2
DEFAULT_DATASETS = ("mooc",)
TOP_K = 10
#: Traffic rounds before and after the replica kills.
ROUNDS_BEFORE = 3
ROUNDS_AFTER = 5
#: WAL crash-recovery must finish within this (generous, CI-sized) budget.
RECOVERY_BUDGET_S = 30.0


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _build_index(name: str) -> InferenceIndex:
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return InferenceIndex.from_model(model, split)


def _spawn_replica_fleet(snapshot_path):
    """``REPLICAS_PER_SHARD`` server processes for each of ``NUM_SHARDS``.

    Returns ``(processes, replica_sets)`` where ``processes[shard][replica]``
    is a killable OS process and ``replica_sets`` plugs straight into
    ``shard_addresses=``.
    """
    processes, replica_sets = [], []
    for shard_id in range(NUM_SHARDS):
        shard_processes, addresses = [], []
        for _ in range(REPLICAS_PER_SHARD):
            process, (host, port) = spawn_shard_server(
                snapshot_path, shard_id, NUM_SHARDS)
            shard_processes.append(process)
            addresses.append(f"{host}:{port}")
        processes.append(shard_processes)
        replica_sets.append(addresses)
    return processes, replica_sets


def _stop_fleet(processes) -> None:
    for shard_processes in processes:
        for process in shard_processes:
            if process.is_alive():
                process.terminate()
    for shard_processes in processes:
        for process in shard_processes:
            process.join(timeout=10.0)


def run_failover(snapshot_path, users) -> dict:
    """Kill one replica per shard mid-traffic; gate availability and parity.

    Every request across the kill must succeed bit-identically to the
    serial oracle; once a whole replica set is dead the typed error is
    mandatory.  Returns the gated metrics.
    """
    with RecommendationService(snapshot=snapshot_path) as oracle_service:
        oracle = oracle_service.top_k(users, TOP_K)

    processes, replica_sets = _spawn_replica_fleet(snapshot_path)
    served = 0
    failed = 0
    killed_at = None
    first_after_kill_s = None
    try:
        with RecommendationService(snapshot=snapshot_path, executor="remote",
                                   shard_addresses=replica_sets) as service:
            executor = service.sharded.executor
            executor.retry_backoff = 0.05
            for _ in range(ROUNDS_BEFORE):
                assert np.array_equal(service.top_k(users, TOP_K), oracle), \
                    "pre-kill remote serving diverged from the serial oracle"
                served += 1

            # Kill the replica every shard is currently sticky on, so the
            # very next request must actually fail over.
            health = service.health_stats()
            for shard_id, shard in enumerate(health["shards"]):
                preferred = max(range(REPLICAS_PER_SHARD),
                                key=lambda r: shard["replicas"][r]["requests"])
                processes[shard_id][preferred].kill()
                processes[shard_id][preferred].join(timeout=10.0)
            killed_at = time.perf_counter()

            for _ in range(ROUNDS_AFTER):
                try:
                    result = service.top_k(users, TOP_K)
                except RemoteShardError:
                    failed += 1
                    continue
                if first_after_kill_s is None:
                    first_after_kill_s = time.perf_counter() - killed_at
                assert np.array_equal(result, oracle), \
                    "post-kill remote serving diverged from the serial oracle"
                served += 1

            health = service.health_stats()
            failovers = health["failovers"]
            assert failed == 0, (
                f"{failed} request(s) failed although every shard kept a "
                f"live replica — failover must make single-replica kills "
                f"invisible")
            assert failovers >= NUM_SHARDS, (
                f"only {failovers} failover(s) recorded for {NUM_SHARDS} "
                f"killed preferred replicas — the kills did not exercise "
                f"the failover path")

            # Phase 2: kill shard 0's surviving replicas too.  The service
            # must fail closed with the typed error, never truncate.
            for process in processes[0]:
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)
            executor.max_retries = 1
            executor.retry_backoff = 0.01
            try:
                service.top_k(users, TOP_K)
            except RemoteShardError:
                typed_error = True
            else:
                raise AssertionError(
                    "a fully-dead replica set produced a result instead of "
                    "a typed RemoteShardError — serving must fail closed")
    finally:
        _stop_fleet(processes)

    total = served + failed
    return {
        "requests": total,
        "served": served,
        "availability": served / total,
        "failovers": int(failovers),
        "failover_recovery_s": first_after_kill_s,
        "killed_shard_typed_error": typed_error,
        "parity": True,
    }


def run_wal_recovery(snapshot_path, num_users: int, num_items: int) -> dict:
    """Crash an ingesting service mid-append; gate recovery parity + time."""
    rng = np.random.default_rng(7)
    batches = [
        (rng.integers(0, num_users + (8 if i == 2 else 0), 32).astype(np.int64),
         rng.integers(0, num_items, 32).astype(np.int64))
        for i in range(6)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        wal_path = Path(tmp) / "ingest.wal"
        # The torn write lands mid-way through the final batch: everything
        # acknowledged before it must survive, the torn batch must not.
        plan = FaultPlan(seed=3).inject("wal.append", "torn_write",
                                       at=len(batches) - 1, keep_fraction=0.7)
        crashed_mid_append = False
        with OnlineRecommendationService(snapshot=snapshot_path,
                                         wal_path=wal_path,
                                         wal_fault_plan=plan) as crashing:
            for users, items in batches:
                try:
                    crashing.ingest(users, items)
                except WalTornWrite:
                    crashed_mid_append = True
            fired_events = crashing.stats()["faults"]["fired_events"]
        assert crashed_mid_append, "the scheduled torn write never fired"
        # The unified stats surface must name the fault that fired — site,
        # request index, and kind — without reaching into FaultPlan
        # internals.
        assert {"site": "wal.append", "index": len(batches) - 1,
                "kind": "torn_write"} in fired_events, (
            f"service.stats()['faults'] does not report the scheduled torn "
            f"write; fired_events={fired_events}")

        acked = batches[:-1]
        with OnlineRecommendationService(snapshot=snapshot_path) as oracle:
            for users, items in acked:
                oracle.ingest(users, items)
            probe = np.arange(oracle.num_users, dtype=np.int64)
            want = oracle.top_k(probe, TOP_K)

        start = time.perf_counter()
        with OnlineRecommendationService(snapshot=snapshot_path,
                                         wal_path=wal_path) as recovered:
            recovery_s = time.perf_counter() - start
            assert recovered.wal_replayed == len(acked), (
                f"recovery replayed {recovered.wal_replayed} records, "
                f"expected the {len(acked)} acknowledged batches")
            got = recovered.top_k(probe, TOP_K)
        assert np.array_equal(got, want), (
            "recovered service diverged from the uncrashed oracle — "
            "acknowledged ingest must be durable bit-identically")
        assert recovery_s < RECOVERY_BUDGET_S, (
            f"WAL recovery took {recovery_s:.2f}s, over the "
            f"{RECOVERY_BUDGET_S}s budget")

    return {
        "wal_batches_acked": len(acked),
        "wal_events_acked": int(sum(users.size for users, _ in acked)),
        "recovery_s": recovery_s,
        "wal_parity": True,
    }


def run_fault_tolerance(datasets=None):
    rows = []
    for name in (datasets or _datasets()):
        index = _build_index(name)
        users = np.arange(min(index.num_users, 256), dtype=np.int64)
        with tempfile.TemporaryDirectory(prefix="repro-bench-fault-") as tmp:
            snapshot_path = save_snapshot(Path(tmp) / "serve.snap", index,
                                          candidate_modes=("int8",))
            failover = run_failover(snapshot_path, users)
            wal = run_wal_recovery(snapshot_path, index.num_users,
                                   index.num_items)
        rows.append({
            "dataset": name,
            "users": int(index.num_users),
            "items": int(index.num_items),
            "shards": NUM_SHARDS,
            "replicas": REPLICAS_PER_SHARD,
            **failover,
            **wal,
        })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'users':>6} {'S':>3} {'R':>3} "
              f"{'reqs':>5} {'avail':>6} {'failovers':>9} "
              f"{'failover s':>10} {'recovery s':>10} {'typed':>6} "
              f"{'parity':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        failover_s = row["failover_recovery_s"]
        lines.append(
            f"{row['dataset']:<10} {row['users']:>6d} {row['shards']:>3d} "
            f"{row['replicas']:>3d} {row['requests']:>5d} "
            f"{row['availability']:>6.2f} {row['failovers']:>9d} "
            f"{(f'{failover_s:.3f}' if failover_s is not None else 'n/a'):>10} "
            f"{row['recovery_s']:>10.3f} "
            f"{str(row['killed_shard_typed_error']):>6} "
            f"{str(row['parity'] and row['wal_parity']):>6}")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_fault_tolerance", rows, preset=preset)


def test_fault_tolerance():
    rows = run_fault_tolerance()
    try:
        from .conftest import print_block
        print_block("Fault tolerance — replica failover + WAL crash recovery",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_fault_tolerance()
    print(format_rows(rows))
    _write_artifact(rows)
    print("OK: replica kills served through failover bit-identically "
          "(availability 1.0); a fully-dead shard raised a typed error; "
          "WAL crash recovery replayed every acknowledged batch "
          "bit-identically within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
