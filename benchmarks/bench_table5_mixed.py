"""Benchmark E5 — Table V: LayerGCN with mixed DegreeDrop / DropEdge pruning.

The paper's finding: the Mixed strategy usually improves on pure DropEdge but
remains below pure DegreeDrop.
"""

from repro.experiments import format_table5, run_table5

from .conftest import print_block

BENCH_DATASETS = ("mooc", "games")


def test_table5_mixed_dropout(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table5(datasets=BENCH_DATASETS, dropout_ratio=0.1, scale=bench_scale),
        rounds=1, iterations=1)
    print_block("Table V — mixed DegreeDrop/DropEdge", format_table5(rows))

    variants = {row["dropout_type"] for row in rows}
    assert variants == {"dropedge", "mixed", "degreedrop"}

    def mean_metric(variant, key="recall@20"):
        values = [row[key] for row in rows if row["dropout_type"] == variant]
        return sum(values) / len(values)

    # Shape check: DegreeDrop stays at least on par with DropEdge on average.
    assert mean_metric("degreedrop") >= mean_metric("dropedge") * 0.9
