"""Benchmark — telemetry is results-neutral and cheap: parity + overhead gates.

The observability layer's non-negotiable invariant is that instrumentation
never changes results and never costs real throughput.  This benchmark
gates both halves:

* **Parity (the CI gate).**  For every cell of S ∈ {1, 4} ×
  candidate_mode ∈ {None, int8} × executor ∈ {serial, remote}, serving
  with the live :class:`MetricsRegistry` (and a tracer installed) must be
  *bit-identical* to serving the same requests with
  :class:`NullMetricsRegistry` and no tracer.  Any drift means a hook
  leaked into scoring, masking, or the merge, and fails the build.
* **Overhead (also gated).**  Telemetry-on vs no-op registry throughput on
  the hot ``service.top_k`` loop, interleaved best-of-N trials so machine
  noise hits both sides equally.  Gate: the live registry costs at most
  5% of throughput (plus a small absolute epsilon so microsecond-scale CI
  cells cannot fail on scheduler jitter).
* **Trace stitching (also gated).**  A traced request served through
  ``executor="remote"`` must produce a request tree containing at least
  one span whose ``origin`` is ``"shard"`` — proof that the shard server's
  spans crossed the wire protocol's JSON meta and were stitched back into
  the router's trace.

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_observability.py`` or via
pytest: ``pytest benchmarks/bench_observability.py -s``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    InferenceIndex,
    MetricsRegistry,
    NullMetricsRegistry,
    RecommendationService,
    ShardServer,
    Tracer,
    save_snapshot,
    set_metrics,
    set_tracer,
)
from repro.models import LightGCN  # noqa: E402

SHARD_COUNTS = (1, 4)
MODES = (None, "int8")
EXECUTORS = ("serial", "remote")
DEFAULT_DATASETS = ("mooc",)
TOP_K = 10
OVERHEAD_LIMIT_PCT = 5.0
#: Absolute slack per ``top_k`` call under the relative gate: on CI-sized
#: presets a call is a few hundred microseconds, so timer granularity and
#: scheduler jitter would otherwise dominate the hooks' single-digit
#: microsecond cost.
OVERHEAD_EPSILON_PER_CALL_S = 20e-6
OVERHEAD_TRIALS = 9
OVERHEAD_ITERS = 10


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",")
                     if name.strip())
    return DEFAULT_DATASETS


def _build_index(name: str) -> InferenceIndex:
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return InferenceIndex.from_model(model, split)


def _serve_cell(snapshot_path, users, *, num_shards, mode, executor,
                addresses):
    """One full top-k batch through the requested serving configuration."""
    kwargs = dict(candidate_mode=mode)
    if executor == "remote":
        kwargs.update(executor="remote", shard_addresses=addresses)
    elif num_shards > 1:
        kwargs.update(num_shards=num_shards)
    with RecommendationService(snapshot=snapshot_path, **kwargs) as service:
        return service.top_k(users, TOP_K)


def check_parity(snapshot_path, users) -> list:
    """Bit-identical serving, telemetry on vs off, across the full grid."""
    rows = []
    for num_shards in SHARD_COUNTS:
        servers = [ShardServer(snapshot_path, shard, num_shards).start()
                   for shard in range(num_shards)]
        addresses = ["{}:{}".format(*server.address) for server in servers]
        try:
            for mode in MODES:
                for executor in EXECUTORS:
                    cell = dict(num_shards=num_shards, mode=mode,
                                executor=executor, addresses=addresses)
                    previous = set_metrics(MetricsRegistry())
                    tracer_before = set_tracer(Tracer())
                    try:
                        with_telemetry = _serve_cell(snapshot_path, users,
                                                     **cell)
                    finally:
                        set_metrics(NullMetricsRegistry())
                        set_tracer(None)
                    try:
                        without = _serve_cell(snapshot_path, users, **cell)
                    finally:
                        set_metrics(previous)
                        set_tracer(tracer_before)
                    assert np.array_equal(with_telemetry, without), (
                        f"telemetry changed serving results (S={num_shards},"
                        f" mode={mode}, executor={executor}) — "
                        f"instrumentation must be results-neutral")
                    rows.append({
                        "check": "parity",
                        "shards": num_shards,
                        "mode": mode or "exact",
                        "executor": executor,
                        "parity": True,
                    })
        finally:
            for server in servers:
                server.close()
    return rows


def measure_overhead(snapshot_path, users, *, trials: int = OVERHEAD_TRIALS,
                     iters: int = OVERHEAD_ITERS) -> dict:
    """Interleaved best-of-N hot-loop timing, live registry vs no-op.

    Each trial times ``iters`` full-batch ``top_k`` calls; on/off trials
    alternate so drift (thermal, cache, competing load) lands on both
    sides.  Per-request latencies feed the p99 columns so the trend table
    tracks tail cost, not just the mean.
    """
    with RecommendationService(snapshot=snapshot_path) as service:
        def run_trial():
            latencies = []
            start = time.perf_counter()
            for _ in range(iters):
                call_start = time.perf_counter()
                service.top_k(users, TOP_K)
                latencies.append(time.perf_counter() - call_start)
            return time.perf_counter() - start, latencies

        run_trial()  # warm-up: page in the snapshot, prime BLAS
        # One long-lived registry per side, like production: instrument
        # creation (the histogram's sample window) happens once, not per
        # trial, so the gate measures the steady-state hook cost.
        registries = {"on": MetricsRegistry(), "off": NullMetricsRegistry()}
        best = {"on": float("inf"), "off": float("inf")}
        latencies = {"on": [], "off": []}
        for _ in range(trials):
            for label in ("on", "off"):
                previous = set_metrics(registries[label])
                try:
                    elapsed, samples = run_trial()
                finally:
                    set_metrics(previous)
                best[label] = min(best[label], elapsed)
                latencies[label].extend(samples)
    try:
        from .artifacts import percentile
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import percentile
    overhead_pct = (best["on"] - best["off"]) / best["off"] * 100.0
    epsilon = OVERHEAD_EPSILON_PER_CALL_S * iters
    effective_pct = (max(0.0, best["on"] - best["off"] - epsilon)
                     / best["off"] * 100.0)
    assert effective_pct <= OVERHEAD_LIMIT_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_LIMIT_PCT}% gate (on {best['on'] * 1e3:.3f} ms vs off "
        f"{best['off'] * 1e3:.3f} ms per {iters}-call trial)")
    return {
        "check": "overhead",
        "trials": trials,
        "iters_per_trial": iters,
        "batch_users": int(users.size),
        "on_ms": best["on"] * 1e3,
        "off_ms": best["off"] * 1e3,
        "overhead_pct": overhead_pct,
        "p99_on_ms": percentile(latencies["on"], 99.0) * 1e3,
        "p99_off_ms": percentile(latencies["off"], 99.0) * 1e3,
        "gate_pct": OVERHEAD_LIMIT_PCT,
    }


def check_remote_trace(snapshot_path, users) -> dict:
    """A remote request's trace must contain shard-origin spans."""
    num_shards = 2
    servers = [ShardServer(snapshot_path, shard, num_shards).start()
               for shard in range(num_shards)]
    addresses = ["{}:{}".format(*server.address) for server in servers]
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with RecommendationService(snapshot=snapshot_path, executor="remote",
                                   shard_addresses=addresses) as service:
            service.top_k(users, TOP_K)
    finally:
        set_tracer(previous)
        for server in servers:
            server.close()
    assert tracer.traces, "no trace was recorded for the remote request"
    trace = tracer.traces[-1]
    shard_spans = sum(1 for span in trace.spans() if span.origin == "shard")
    assert shard_spans >= 1, (
        "the remote request's trace holds no shard-origin spans — the "
        "shard servers' spans were not stitched into the router's trace:\n"
        + trace.format_tree())
    return {
        "check": "remote_trace",
        "shards": num_shards,
        "shard_spans": shard_spans,
        "trace_spans": sum(1 for _ in trace.spans()),
        "trace_ms": trace.duration * 1e3,
    }


def run_observability(datasets=None):
    rows = []
    for name in (datasets or _datasets()):
        index = _build_index(name)
        users = np.arange(index.num_users, dtype=np.int64)
        with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
            snapshot_path = save_snapshot(Path(tmp) / "serve.snap", index,
                                          candidate_modes=("int8",))
            for row in check_parity(snapshot_path, users):
                rows.append({"dataset": name, **row})
            rows.append({"dataset": name,
                         **measure_overhead(snapshot_path, users)})
            rows.append({"dataset": name,
                         **check_remote_trace(snapshot_path, users[:16])})
    return rows


def format_rows(rows) -> str:
    lines = []
    parity = [row for row in rows if row["check"] == "parity"]
    if parity:
        header = (f"{'dataset':<10} {'S':>3} {'mode':>6} {'executor':>8} "
                  f"{'parity':>7}")
        lines += [header, "-" * len(header)]
        for row in parity:
            lines.append(f"{row['dataset']:<10} {row['shards']:>3d} "
                         f"{row['mode']:>6} {row['executor']:>8} "
                         f"{'yes' if row['parity'] else 'NO':>7}")
    for row in rows:
        if row["check"] == "overhead":
            lines.append(
                f"{row['dataset']}: telemetry on {row['on_ms']:.3f} ms / "
                f"off {row['off_ms']:.3f} ms per trial "
                f"({row['overhead_pct']:+.2f}% overhead, gate "
                f"{row['gate_pct']:.0f}%); p99 {row['p99_on_ms']:.3f} ms on "
                f"vs {row['p99_off_ms']:.3f} ms off")
        elif row["check"] == "remote_trace":
            lines.append(
                f"{row['dataset']}: remote trace stitched "
                f"{row['shard_spans']} shard span(s) into a "
                f"{row['trace_spans']}-span tree ({row['trace_ms']:.3f} ms)")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_observability", rows, preset=preset)


def test_observability():
    rows = run_observability()
    try:
        from .conftest import print_block
        print_block("Observability — telemetry parity, overhead, and trace "
                    "stitching", format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_observability()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: bit-identical serving with telemetry on vs off across "
          f"S={SHARD_COUNTS} x modes={MODES} x executors={EXECUTORS}; "
          f"overhead within {OVERHEAD_LIMIT_PCT}%; shard spans stitched "
          f"into the router trace")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
