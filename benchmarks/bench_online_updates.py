"""Benchmark — online incremental index updates: ingest vs full rebuild.

Streams batches of new (user, item) interaction events — including events
from previously unseen users — into an
:class:`repro.engine.OnlineRecommendationService` and gates two things
against the frozen-snapshot alternative of rebuilding the whole serving
stack per event batch:

* **Overlay == rebuild parity (the CI gate).**  After every ingested batch,
  and again before/after ``compact()``, serving through the delta overlay
  must be bit-identical to a service rebuilt from scratch on the accumulated
  interactions (same embedding matrices including the fallback rows grown
  for new users, fresh exclusion CSR).  Checked for S in {1, 4} and
  candidate_mode in {None, int8}; any drift is an exactness bug and fails
  the build.  The compacted CSR must additionally be bit-identical
  (indptr/indices) to a from-scratch :class:`UserItemIndex` build.
* **Ingest cost.**  Folding a batch into the delta must beat rebuilding the
  serving state: amortised ingest time per batch at least
  ``MIN_SPEEDUP_VS_REBUILD``x cheaper than one full rebuild, and absolute
  ingest throughput above ``MIN_INGEST_PAIRS_PER_SEC`` (a deliberately
  conservative floor — the merge is a handful of vectorised passes — that
  still catches an accidentally quadratic append path).

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_online_updates.py`` or via
pytest: ``pytest benchmarks/bench_online_updates.py -s``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    InferenceIndex,
    OnlineRecommendationService,
    RecommendationService,
    UserItemIndex,
)
from repro.models import LightGCN  # noqa: E402

MODES = (None, "int8")
SHARD_COUNTS = (1, 4)
DEFAULT_DATASETS = ("mooc", "games")
TOP_K = 10
NUM_BATCHES = 5
BATCH_EVENTS = 200
NEW_USER_HEADROOM = 8  # event user ids may exceed the catalogue by this many

MIN_SPEEDUP_VS_REBUILD = 1.5
MIN_INGEST_PAIRS_PER_SEC = 25_000


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _assert_speedup() -> bool:
    """Only assert the rebuild-speedup floor on the full presets.

    On the tiny CI smoke preset a full rebuild costs ~0.1 ms, so there is
    nothing to amortise; parity and the absolute ingest-throughput floor are
    the smoke gates (matching how the other benchmarks scope their speedup
    floors to the Table-2 presets).
    """
    return os.environ.get("REPRO_BENCH_DATASET") is None


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _build_model(name: str):
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    return model, split


def _rebuild_service(online: OnlineRecommendationService, num_shards: int,
                     mode) -> RecommendationService:
    """A frozen service built from scratch on the accumulated interactions."""
    users, items = online.overlay.all_pairs()
    index = InferenceIndex(
        online.num_users, online.num_items,
        user_embeddings=online.index.user_embeddings,
        item_embeddings=online.index.item_embeddings,
        exclusion=UserItemIndex(online.num_users, online.num_items,
                                users, items))
    return RecommendationService(index=index, num_shards=num_shards,
                                 candidate_mode=mode)


def _assert_parity(online: OnlineRecommendationService, num_shards: int,
                   mode, context: str) -> None:
    all_users = np.arange(online.num_users, dtype=np.int64)
    got = online.top_k(all_users, TOP_K)
    want = _rebuild_service(online, num_shards, mode).top_k(all_users, TOP_K)
    assert np.array_equal(got, want), (
        f"{context}: overlay serving diverged from the from-scratch rebuild "
        f"— the 'updates are exact' invariant is broken")


def run_online_updates(datasets=None, repeats: int = 3):
    """Parity-check and profile every (dataset, mode, shards) cell."""
    rows = []
    for name in (datasets or _datasets()):
        model, split = _build_model(name)
        rng = np.random.default_rng(12345)
        batches = [
            (rng.integers(0, split.num_users + NEW_USER_HEADROOM, BATCH_EVENTS),
             rng.integers(0, split.num_items, BATCH_EVENTS))
            for _ in range(NUM_BATCHES)
        ]
        for mode in MODES:
            for num_shards in SHARD_COUNTS:
                online = OnlineRecommendationService(
                    model, split, num_shards=num_shards, candidate_mode=mode,
                    compact_threshold=10 ** 9)  # manual compaction only
                ingest_seconds = 0.0
                ingested = 0
                for batch_id, (users, items) in enumerate(batches):
                    start = time.perf_counter()
                    stats = online.ingest(users, items)
                    ingest_seconds += time.perf_counter() - start
                    ingested += stats["ingested"]
                    _assert_parity(online, num_shards, mode,
                                   f"{name}/{mode}/S={num_shards}/"
                                   f"batch={batch_id}")
                all_users = np.arange(online.num_users, dtype=np.int64)
                before = online.top_k(all_users, TOP_K)
                online.compact()
                after = online.top_k(all_users, TOP_K)
                assert np.array_equal(before, after), (
                    f"{name}/{mode}/S={num_shards}: compaction changed "
                    f"served results")
                pair_users, pair_items = online.overlay.all_pairs()
                scratch = UserItemIndex(online.num_users, online.num_items,
                                        pair_users, pair_items)
                assert np.array_equal(online.overlay.base.indptr,
                                      scratch.indptr)
                assert np.array_equal(online.overlay.base.indices,
                                      scratch.indices)
                _assert_parity(online, num_shards, mode,
                               f"{name}/{mode}/S={num_shards}/post-compact")

                rebuild_s = _time(
                    lambda: _rebuild_service(online, num_shards, mode),
                    repeats)
                ingest_per_batch_s = ingest_seconds / NUM_BATCHES
                throughput = ingested / ingest_seconds if ingest_seconds else 0.0
                speedup = (rebuild_s / ingest_per_batch_s
                           if ingest_per_batch_s else float("inf"))
                rows.append({
                    "dataset": name,
                    "users": int(split.num_users),
                    "items": int(split.num_items),
                    "mode": mode or "exact",
                    "shards": num_shards,
                    "batches": NUM_BATCHES,
                    "events_per_batch": BATCH_EVENTS,
                    "ingested_pairs": int(ingested),
                    "new_users": int(online.new_users),
                    "ingest_ms_per_batch": ingest_per_batch_s * 1e3,
                    "rebuild_ms": rebuild_s * 1e3,
                    "speedup_vs_rebuild": speedup,
                    "ingest_pairs_per_sec": throughput,
                    "parity": "exact",
                })
        for row in rows:
            if row["dataset"] != name:
                continue
            if _assert_speedup():
                assert row["speedup_vs_rebuild"] >= MIN_SPEEDUP_VS_REBUILD, (
                    f"{name}/{row['mode']}/S={row['shards']}: ingesting a "
                    f"batch ({row['ingest_ms_per_batch']:.3f} ms) is not "
                    f"{MIN_SPEEDUP_VS_REBUILD}x cheaper than a full rebuild "
                    f"({row['rebuild_ms']:.3f} ms)")
            assert row["ingest_pairs_per_sec"] >= MIN_INGEST_PAIRS_PER_SEC, (
                f"{name}/{row['mode']}/S={row['shards']}: ingest throughput "
                f"{row['ingest_pairs_per_sec']:.0f} pairs/s under the "
                f"{MIN_INGEST_PAIRS_PER_SEC} floor")
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'mode':>7} {'S':>3} {'pairs':>6} "
              f"{'new_u':>6} {'ingest ms':>10} {'rebuild ms':>11} "
              f"{'speedup':>8} {'pairs/s':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['mode']:>7} {row['shards']:>3d} "
            f"{row['ingested_pairs']:>6d} {row['new_users']:>6d} "
            f"{row['ingest_ms_per_batch']:>10.3f} {row['rebuild_ms']:>11.3f} "
            f"{row['speedup_vs_rebuild']:>7.1f}x "
            f"{row['ingest_pairs_per_sec']:>10.0f}")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_online_updates", rows, preset=preset)


def test_online_updates():
    rows = run_online_updates()
    try:
        from .conftest import print_block
        print_block("Online incremental updates — ingest vs full rebuild",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_online_updates()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: overlay==rebuild parity exact, modes={MODES}, "
          f"shards={SHARD_COUNTS}, {NUM_BATCHES}x{BATCH_EVENTS} events")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
