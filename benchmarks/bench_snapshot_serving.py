"""Benchmark — zero-copy snapshot serving: load-time + bit-parity gates.

Freezes a trained model's serving state into a :mod:`repro.engine.snapshot`
artifact and gates three claims (all CI-enforced, not just reported):

* **O(open) cold start.**  ``load_snapshot(mmap=True)`` plus rebuilding the
  full serving stack from the mapped sections (index, exclusion, int8 block)
  must be at least ``MIN_LOAD_SPEEDUP``x faster than the freeze-from-model
  path it replaces (re-freezing the embeddings, rebuilding the exclusion
  CSR, requantising the candidate block).
* **Bounded first request.**  The first top-K batch served off a fresh mmap
  (cold views, pages faulted on demand) must land within
  ``FIRST_REQUEST_BUDGET_S`` — a generous absolute bound that catches
  pathological paging, not micro-noise.
* **Bit-identical serving.**  For every cell of S ∈ {1, 4} ×
  candidate_mode ∈ {None, int8} × dtype ∈ {float64, float32} ×
  mmap ∈ {True, False}, serving from the snapshot must return bit-exact
  top-K lists (same ids, same order) versus the in-memory index it was
  saved from — and the multi-process executor must match the serial router
  on the same snapshot.  Any drift fails the build.

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_snapshot_serving.py`` or via
pytest: ``pytest benchmarks/bench_snapshot_serving.py -s``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    InferenceIndex,
    RecommendationService,
    load_snapshot,
    quantize_item_matrix,
    save_snapshot,
)
from repro.engine.index import _SPLIT_INDEX_CACHE  # noqa: E402
from repro.models import LightGCN  # noqa: E402

SHARD_COUNTS = (1, 4)
CANDIDATE_MODES = (None, "int8")
DTYPES = (np.float64, np.float32)
DEFAULT_DATASETS = ("mooc", "games")
TOP_K = 10

#: The load-path gate: opening a snapshot must beat re-freezing from the
#: model by at least this factor (the ISSUE's >=10x claim).
MIN_LOAD_SPEEDUP = 10.0
#: Absolute ceiling on the first mmap-served batch (catches pathological
#: paging; deliberately generous so CI jitter cannot trip it).
FIRST_REQUEST_BUDGET_S = 2.0


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _time(callable_, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _build(name: str):
    # Serving-scale embedding dim: the freeze-vs-open comparison is about the
    # per-worker cold-start work (GCN propagation, CSR build, quantisation),
    # which a toy dim would understate relative to the fixed open cost.
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=1024, num_layers=3, seed=0)
    model.eval()
    return model, split


def _freeze_from_model(model, split, dtype) -> InferenceIndex:
    """The cold-start work a serving worker does today, end to end.

    Clearing the split's memoised exclusion cache and the model's cached
    final embeddings makes every repeat pay the real GCN propagation and the
    real CSR build, exactly like a fresh process would; the int8 block and
    the item norms are part of the frozen state too, so they count.
    """
    if hasattr(split, _SPLIT_INDEX_CACHE):
        delattr(split, _SPLIT_INDEX_CACHE)
    if hasattr(model, "_cached_final"):
        model._cached_final = None
    index = InferenceIndex.from_model(model, split, dtype=dtype)
    quantize_item_matrix(index.item_embeddings, "int8",
                         item_norms=index.item_norms)
    return index


def _open_snapshot(path):
    """The replacement cold start: map the file, adopt every section."""
    snapshot = load_snapshot(path, mmap=True)
    index = snapshot.inference_index()
    snapshot.quantized_block("int8")
    return snapshot, index


def check_parity(index: InferenceIndex, path, users: np.ndarray) -> int:
    """Assert snapshot serving is bit-identical to in-memory serving.

    Sweeps S x candidate_mode x mmap on one dtype's snapshot; the in-memory
    :class:`RecommendationService` over the original index is the oracle for
    each cell (same backend configuration, no snapshot involved).
    """
    comparisons = 0
    for num_shards in SHARD_COUNTS:
        for mode in CANDIDATE_MODES:
            with RecommendationService(
                    index=index, num_shards=num_shards,
                    candidate_mode=mode) as oracle_service:
                oracle = oracle_service.top_k(users, TOP_K)
            for mmap in (True, False):
                with RecommendationService(
                        snapshot=load_snapshot(path, mmap=mmap),
                        num_shards=num_shards, candidate_mode=mode) as svc:
                    got = svc.top_k(users, TOP_K)
                assert np.array_equal(oracle, got), (
                    f"snapshot serving (S={num_shards}, mode={mode}, "
                    f"mmap={mmap}) diverges from the in-memory oracle")
                comparisons += 1
            if num_shards > 1:
                # Multi-process fan-out: workers re-open the snapshot by
                # offset; the router's merge must match the serial path.
                with RecommendationService(
                        snapshot=load_snapshot(path), num_shards=num_shards,
                        candidate_mode=mode, executor="process") as svc:
                    got = svc.top_k(users, TOP_K)
                assert np.array_equal(oracle, got), (
                    f"process-executor serving (S={num_shards}, mode={mode}) "
                    f"diverges from the serial oracle")
                comparisons += 1
    return comparisons


def run_snapshot_serving(datasets=None, repeats: int = 9):
    """Gate load-time, first-request latency and parity for every dataset."""
    rows = []
    for name in (datasets or _datasets()):
        model, split = _build(name)
        for dtype in DTYPES:
            index = _freeze_from_model(model, split, dtype)
            users = np.arange(index.num_users, dtype=np.int64)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / f"{name}-{np.dtype(dtype).name}.snap"
                save_ms = _time(lambda: save_snapshot(
                    path, index, candidate_modes=("int8",)), repeats) * 1e3

                freeze_s = _time(
                    lambda: _freeze_from_model(model, split, dtype), repeats)
                # The open path is microseconds-cheap, so take many more
                # repeats: best-of-N on a ~0.1 ms operation needs a larger N
                # to reliably catch an unloaded scheduling window in CI.
                load_s = _time(lambda: _open_snapshot(path), repeats * 5)
                speedup = freeze_s / load_s
                assert speedup >= MIN_LOAD_SPEEDUP, (
                    f"{name}/{np.dtype(dtype).name}: mmap load is only "
                    f"{speedup:.1f}x faster than freeze-from-model "
                    f"(gate: >={MIN_LOAD_SPEEDUP}x)")

                _, cold_index = _open_snapshot(path)
                first_batch = users[:min(128, users.size)]
                start = time.perf_counter()
                cold_index.top_k(first_batch, TOP_K)
                first_request_s = time.perf_counter() - start
                assert first_request_s <= FIRST_REQUEST_BUDGET_S, (
                    f"{name}/{np.dtype(dtype).name}: first mmap-served "
                    f"request took {first_request_s:.3f}s "
                    f"(budget: {FIRST_REQUEST_BUDGET_S}s)")

                comparisons = check_parity(index, path, users)
                rows.append({
                    "dataset": name,
                    "dtype": np.dtype(dtype).name,
                    "users": int(index.num_users),
                    "items": int(index.num_items),
                    "snapshot_bytes": int(path.stat().st_size),
                    "save_ms": save_ms,
                    "freeze_ms": freeze_s * 1e3,
                    "load_ms": load_s * 1e3,
                    "load_speedup": speedup,
                    "first_request_ms": first_request_s * 1e3,
                    "parity_checks": comparisons,
                })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'dtype':>8} {'users':>6} {'items':>6} "
              f"{'bytes':>9} {'freeze ms':>10} {'load ms':>8} "
              f"{'speedup':>8} {'1st req ms':>11} {'parity':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['dtype']:>8} {row['users']:>6d} "
            f"{row['items']:>6d} {row['snapshot_bytes']:>9d} "
            f"{row['freeze_ms']:>10.2f} {row['load_ms']:>8.3f} "
            f"{row['load_speedup']:>7.1f}x {row['first_request_ms']:>11.2f} "
            f"{row['parity_checks']:>7d}")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_snapshot_serving", rows, preset=preset)


def test_snapshot_serving():
    rows = run_snapshot_serving()
    try:
        from .conftest import print_block
        print_block("Snapshot serving — mmap cold start vs freeze-from-model",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_snapshot_serving()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: load >={MIN_LOAD_SPEEDUP:.0f}x faster than freeze, serving "
          f"bit-identical across S={SHARD_COUNTS}, "
          f"modes={CANDIDATE_MODES}, dtypes=(float64, float32), "
          f"mmap and process executors included")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
