"""Ablation benchmark — design choices of LayerGCN's readout (DESIGN.md).

Not a paper table, but an ablation of the design decisions the paper argues
for qualitatively:

* dropping vs keeping the ego layer in the readout (Eq. 9 vs Eq. 3),
* cosine refinement vs no refinement (LayerGCN vs a sum-readout LightGCN),
* sum vs mean readout (the injectivity argument of Proposition 1).

The LayerGCN variants are obtained by comparing against LightGCN configured to
mimic each alternative.
"""


from repro.experiments import format_table, load_splits, train_and_evaluate

from .conftest import print_block


def _run_ablation(scale):
    split = load_splits(["mooc"], scale=scale)["mooc"]
    rows = []

    variants = [
        ("LayerGCN (refined, ego dropped, sum)", "layergcn",
         {"num_layers": 4, "dropout_ratio": 0.1, "edge_dropout": "degreedrop"}),
        ("LayerGCN w/o edge dropout", "layergcn",
         {"num_layers": 4, "dropout_ratio": 0.0}),
        ("LightGCN (mean readout incl. ego)", "lightgcn", {"num_layers": 4}),
        ("LightGCN learnable layer weights", "lightgcn-learnable", {"num_layers": 4}),
    ]
    for label, model_name, kwargs in variants:
        _, history, result = train_and_evaluate(model_name, split, scale, model_kwargs=kwargs)
        rows.append({"variant": label, "best_epoch": history.best_epoch, **result.as_dict()})
    return rows


def test_ablation_readout_and_refinement(benchmark, bench_scale):
    rows = benchmark.pedantic(lambda: _run_ablation(bench_scale), rounds=1, iterations=1)
    print_block("Ablation — readout / refinement / edge-dropout variants (MOOC)",
                format_table(rows, ["variant", "recall@20", "recall@50",
                                    "ndcg@20", "ndcg@50", "best_epoch"]))

    by_variant = {row["variant"]: row for row in rows}
    full = by_variant["LayerGCN (refined, ego dropped, sum)"]
    # The full model should not be dramatically worse than any ablated variant.
    for label, row in by_variant.items():
        assert full["recall@50"] >= row["recall@50"] * 0.8, label
