"""Benchmark E1 — Table I: dataset statistics.

Regenerates the users/items/interactions/sparsity table for the four synthetic
presets standing in for MOOC, Games, Food and Yelp.
"""

from repro.experiments import format_table1, run_table1

from .conftest import print_block


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(lambda: run_table1(scale=1.0), rounds=1, iterations=1)
    print_block("Table I — dataset statistics (synthetic presets)", format_table1(rows))

    datasets = {row["dataset"]: row for row in rows}
    # Shape checks mirroring the paper: MOOC is the dense, item-scarce dataset;
    # Yelp has the largest item catalogue of the four.
    assert datasets["mooc"]["sparsity"] < datasets["yelp"]["sparsity"]
    assert datasets["mooc"]["users_per_item"] > datasets["games"]["users_per_item"]
    assert datasets["yelp"]["num_items"] >= datasets["games"]["num_items"]
