"""Benchmark E2 — Table II: overall performance comparison.

Trains every Table II model on the dense (MOOC-like) and one sparse
(Games-like) preset and prints Recall@{10,20,50} / NDCG@{10,20,50} plus the
improvement of LayerGCN (Full) over the best baseline.

The full 11-model x 4-dataset grid of the paper is available via
``run_table2()`` with default arguments; the benchmark uses a 2-dataset subset
to keep the suite's wall-clock time reasonable.
"""

from repro.experiments import format_table2, run_table2

from .conftest import print_block

BENCH_DATASETS = ("mooc", "games")


def test_table2_overall_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table2(datasets=BENCH_DATASETS, scale=bench_scale),
        rounds=1, iterations=1)
    print_block("Table II — overall performance comparison", format_table2(rows))

    for dataset in BENCH_DATASETS:
        by_model = {row["model"]: row for row in rows if row["dataset"] == dataset}
        layergcn_full = by_model["LayerGCN (Full)"]
        baselines = [row for name, row in by_model.items()
                     if not name.startswith("LayerGCN")]
        best_baseline_r20 = max(row["recall@20"] for row in baselines)
        # Shape check from the paper: LayerGCN (Full) is competitive with the
        # best baseline on every dataset (ties allowed at this small scale).
        assert layergcn_full["recall@20"] >= best_baseline_r20 * 0.85
