"""Benchmark E4 — Table IV: DegreeDrop vs DropEdge at fixed and best epochs.

The paper reports LayerGCN + DegreeDrop reaching better accuracy than
LayerGCN + DropEdge both at intermediate epochs (20/50) and at the best epoch
on all four datasets.  The benchmark runs two datasets (one dense, one sparse)
with proportionally smaller checkpoints.
"""

from repro.experiments import format_table4, run_table4

from .conftest import print_block

BENCH_DATASETS = ("mooc", "games")
CHECKPOINTS = (5, 10)


def test_table4_degreedrop_vs_dropedge(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table4(datasets=BENCH_DATASETS, checkpoint_epochs=CHECKPOINTS,
                           dropout_ratio=0.1, scale=bench_scale),
        rounds=1, iterations=1)
    print_block("Table IV — DegreeDrop vs DropEdge at fixed/best epochs", format_table4(rows))

    # Shape check: averaged over datasets, DegreeDrop's best-epoch recall@20 is
    # at least on par with DropEdge's.
    def mean_best(variant):
        values = [row["recall@20"] for row in rows
                  if row["variant"] == variant and row["epoch"] == "best"]
        return sum(values) / len(values)

    assert mean_best("degreedrop") >= mean_best("dropedge") * 0.9
