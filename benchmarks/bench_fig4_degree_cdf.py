"""Benchmark E8 — Fig. 4: CDF of rooted item degrees (MOOC vs Yelp).

The paper uses this figure to explain why DegreeDrop helps most on MOOC: its
items have much larger degrees (hub courses), whereas ~90% of Yelp items have
a rooted degree below 10, making degree-sensitive probabilities hard to
differentiate.
"""

import numpy as np

from repro.experiments import degree_skew_summary, format_table, run_degree_cdf

from .conftest import print_block


def test_fig4_item_degree_cdf(benchmark):
    results = benchmark.pedantic(
        lambda: run_degree_cdf(datasets=("mooc", "yelp"), scale=1.0, num_points=20),
        rounds=1, iterations=1)

    summary = degree_skew_summary(results)
    body = [format_table(summary, ["dataset", "num_items", "mean_degree", "median_degree",
                                   "p90_degree", "max_degree", "share_rooted_below_10"])]
    for name, payload in results.items():
        points = "  ".join(f"({x:.1f},{y:.2f})" for x, y in
                           zip(payload["grid"][::4], payload["cdf"][::4]))
        body.append(f"{name} CDF samples: {points}")
    print_block("Fig. 4 — CDF of sqrt(item degree), MOOC vs Yelp", "\n".join(body))

    stats = {row["dataset"]: row for row in summary}
    # Shape checks mirroring the paper's discussion.
    assert stats["mooc"]["mean_degree"] > stats["yelp"]["mean_degree"]
    assert stats["yelp"]["share_rooted_below_10"] >= stats["mooc"]["share_rooted_below_10"] - 1e-9
    for payload in results.values():
        assert np.all(np.diff(payload["cdf"]) >= -1e-12)
