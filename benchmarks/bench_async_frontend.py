"""Benchmark — async micro-batching front-end: coalesced vs per-request serving.

A closed-loop asyncio load generator (``NUM_CLIENTS`` concurrent clients,
each awaiting its response before issuing the next request) drives the
:class:`repro.engine.AsyncRecommendationFrontend` and gates four things:

* **Coalescing == direct serving parity (the CI gate).**  Every result a
  client awaits must be bit-identical to calling ``service.top_k([user], k)``
  directly — "coalescing never changes results".  Any drift is an exactness
  bug and fails the build.
* **Coalesced throughput.**  Sustained QPS through the frontend must be at
  least ``MIN_COALESCED_SPEEDUP``x the naive one-request-per-batch loop (the
  same clients, each request dispatched alone to a worker thread) at
  ``NUM_CLIENTS`` concurrent clients — the whole point of micro-batching.
* **p99 latency budget.**  The p99 of per-request latencies must respect the
  ``batch_window_ms`` deadline: a request waits for at most one window plus
  scoring/scheduling headroom (``P99_BUDGET_MS``), never unboundedly.  A
  lone request on an idle frontend must also be served within the deadline
  budget, not held for a full batch.
* **Load shedding.**  With a tiny ``max_pending`` and a slowed-down scorer,
  a burst above capacity must shed deterministically (``shed="reject"`` ->
  :class:`OverloadedError`), after which the queue must be fully consistent:
  zero pending slots and follow-up requests still bit-identical to the
  oracle.

A mixed recommend+ingest phase also runs concurrent event producers through
``frontend.ingest`` (coalesced overlay merges) and re-checks end-state parity
against a direct ``service.top_k`` pass.

Environment knobs: ``REPRO_BENCH_DATASET`` (e.g. ``tiny`` for the CI smoke
run) and ``REPRO_BENCH_JSON`` (artifact directory, see ``artifacts.py``).

Run stand-alone with ``python benchmarks/bench_async_frontend.py`` or via
pytest: ``pytest benchmarks/bench_async_frontend.py -s``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import chronological_split, dataset_preset  # noqa: E402
from repro.engine import (  # noqa: E402
    AsyncRecommendationFrontend,
    OnlineRecommendationService,
    OverloadedError,
    RecommendationService,
)
from repro.models import LightGCN  # noqa: E402

DEFAULT_DATASETS = ("mooc", "games")
TOP_K = 10
NUM_CLIENTS = 64
REQUESTS_PER_CLIENT = 20
BATCH_WINDOW_MS = 25.0
MAX_BATCH_SIZE = NUM_CLIENTS
INGEST_CLIENTS = 8
INGEST_EVENTS_PER_CLIENT = 5

MIN_COALESCED_SPEEDUP = 2.0
#: One full window of co-batching plus generous scoring/scheduling headroom
#: for noisy CI machines; the point is that p99 scales with the window, not
#: with the total load.
P99_BUDGET_MS = 4.0 * BATCH_WINDOW_MS + 150.0


def _datasets():
    override = os.environ.get("REPRO_BENCH_DATASET")
    if override:
        return tuple(name.strip() for name in override.split(",") if name.strip())
    return DEFAULT_DATASETS


def _build_service(name: str):
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    # cache_size=0: both serving paths score every request, so the
    # throughput comparison measures batching, not cache luck.
    service = RecommendationService(model, split, cache_size=0)
    return service, split, model


def _request_plan(split, seed: int = 2024):
    """The deterministic closed-loop request schedule, one list per client."""
    rng = np.random.default_rng(seed)
    return [
        [int(user) for user in
         rng.integers(0, split.num_users, REQUESTS_PER_CLIENT)]
        for _ in range(NUM_CLIENTS)
    ]


async def _run_naive(service, plan):
    """One-request-per-batch baseline: every call ships batch size 1."""
    loop = asyncio.get_running_loop()
    latencies = []
    results = []

    with concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="naive") as pool:
        async def client(users):
            for user in users:
                start = time.perf_counter()
                block = np.asarray([user], dtype=np.int64)
                rows = await loop.run_in_executor(
                    pool, service.top_k, block, TOP_K)
                latencies.append(time.perf_counter() - start)
                results.append((user, [int(i) for i in rows[0]]))

        start = time.perf_counter()
        await asyncio.gather(*[client(users) for users in plan])
        elapsed = time.perf_counter() - start
    return elapsed, latencies, results


async def _run_coalesced(service, plan):
    """The same closed-loop clients, served through the micro-batching
    frontend."""
    latencies = []
    results = []

    async with AsyncRecommendationFrontend(
            service, max_batch_size=MAX_BATCH_SIZE,
            batch_window_ms=BATCH_WINDOW_MS,
            max_pending=4 * NUM_CLIENTS) as frontend:
        async def client(users):
            for user in users:
                start = time.perf_counter()
                row = await frontend.recommend(user, TOP_K)
                latencies.append(time.perf_counter() - start)
                results.append((user, row))

        start = time.perf_counter()
        await asyncio.gather(*[client(users) for users in plan])
        elapsed = time.perf_counter() - start
        stats = frontend.stats()
    return elapsed, latencies, results, stats


async def _lone_request_latency(service, split):
    """Deadline semantics: an idle frontend serves a lone request within the
    window budget instead of holding it for a full batch."""
    async with AsyncRecommendationFrontend(
            service, max_batch_size=MAX_BATCH_SIZE,
            batch_window_ms=BATCH_WINDOW_MS) as frontend:
        start = time.perf_counter()
        row = await frontend.recommend(0, TOP_K)
        elapsed = time.perf_counter() - start
    want = [int(i) for i in service.top_k(np.asarray([0]), TOP_K)[0]]
    assert row == want, "lone-request result diverged from direct serving"
    assert elapsed * 1e3 <= P99_BUDGET_MS, (
        f"lone request took {elapsed * 1e3:.1f} ms — the batch_window_ms "
        f"deadline ({BATCH_WINDOW_MS} ms) is not being honoured "
        f"(budget {P99_BUDGET_MS:.0f} ms)")
    return elapsed


async def _warm_cache_stats(model, split):
    """Serve the same users twice through a cache-enabled frontend and
    report the LRU counters for the artifact (second pass = pure hits that
    bypass the batching queue entirely)."""
    service = RecommendationService(model, split)
    users = list(range(min(32, split.num_users)))
    try:
        async with AsyncRecommendationFrontend(
                service, max_batch_size=len(users),
                batch_window_ms=BATCH_WINDOW_MS) as frontend:
            first = await asyncio.gather(
                *[frontend.recommend(u, TOP_K) for u in users])
            second = await asyncio.gather(
                *[frontend.recommend(u, TOP_K) for u in users])
            stats = frontend.stats()
        assert first == second, "cache hits must return the batched rows"
        assert stats["cache_hits"] == len(users), (
            "a fully warmed LRU must serve the repeat pass without batching")
        cache = service.cache_stats()
        assert cache["hits"] == len(users) and cache["misses"] == len(users)
        return cache
    finally:
        service.close()


async def _run_shedding(service, split):
    """Overload burst: deterministic shedding, then a consistent queue."""
    max_pending = 8
    original_top_k = service.top_k

    def slow_top_k(users, k, exclude_train=True):
        time.sleep(0.02)  # make the burst outlive its first batch
        return original_top_k(users, k, exclude_train=exclude_train)

    service.top_k = slow_top_k
    try:
        frontend = AsyncRecommendationFrontend(
            service, max_batch_size=max_pending, batch_window_ms=10_000.0,
            max_pending=max_pending, shed="reject")
        burst = await asyncio.gather(
            *[frontend.recommend(u % split.num_users, TOP_K)
              for u in range(4 * max_pending)],
            return_exceptions=True)
        served = [r for r in burst if isinstance(r, list)]
        shed = [r for r in burst if isinstance(r, OverloadedError)]
        unexpected = [r for r in burst
                      if not isinstance(r, (list, OverloadedError))]
        assert not unexpected, f"unexpected failures under overload: {unexpected[:3]}"
        assert len(served) == max_pending and len(shed) == 3 * max_pending, (
            f"expected exactly {max_pending} served / {3 * max_pending} shed, "
            f"got {len(served)} / {len(shed)}")
        # Queue consistency: no stranded slots, follow-ups still exact.
        assert frontend.pending == 0, "shed requests leaked queue slots"
        follow_task = asyncio.ensure_future(
            frontend.recommend(1 % split.num_users, TOP_K))
        await asyncio.sleep(0)
        await frontend.flush()
        follow_up = await follow_task
        want = original_top_k(np.asarray([1 % split.num_users]), TOP_K)
        assert follow_up == [int(i) for i in want[0]], (
            "post-shed serving diverged from the oracle")
        stats = frontend.stats()
        await frontend.close()
        return {"served": len(served), "shed": stats["shed"],
                "queue_high_water": stats["queue_high_water"]}
    finally:
        service.top_k = original_top_k


async def _run_ingest_mix(name: str):
    """Concurrent recommend + ingest traffic, then end-state parity."""
    split = chronological_split(dataset_preset(name, seed=0))
    model = LightGCN(split, embedding_dim=64, num_layers=3, seed=0)
    model.eval()
    online = OnlineRecommendationService(model, split, cache_size=0,
                                         compact_threshold=10 ** 9)
    rng = np.random.default_rng(99)
    recommend_users = [int(u) for u in
                       rng.integers(0, split.num_users, 2 * NUM_CLIENTS)]
    event_plan = [
        (rng.integers(0, split.num_users, INGEST_EVENTS_PER_CLIENT),
         rng.integers(0, split.num_items, INGEST_EVENTS_PER_CLIENT))
        for _ in range(INGEST_CLIENTS)
    ]

    async with AsyncRecommendationFrontend(
            online, max_batch_size=16,
            batch_window_ms=BATCH_WINDOW_MS) as frontend:
        ingest_stats = asyncio.gather(
            *[frontend.ingest(users, items) for users, items in event_plan])
        recommend_rows = asyncio.gather(
            *[frontend.recommend(user, TOP_K) for user in recommend_users])
        per_call, _ = await asyncio.gather(ingest_stats, recommend_rows)
        stats = frontend.stats()
        # After the mixed traffic drains, the frontend must serve the same
        # bits as the service it wraps — ingests and all.
        final = await asyncio.gather(
            *[frontend.recommend(user, TOP_K) for user in recommend_users])
    oracle = online.top_k(np.asarray(recommend_users, dtype=np.int64), TOP_K)
    for user, got, want in zip(recommend_users, final, oracle):
        assert got == [int(i) for i in want], (
            f"post-ingest parity broke for user {user}")
    assert stats["ingest_events"] == INGEST_CLIENTS * INGEST_EVENTS_PER_CLIENT
    assert stats["ingest_batches"] <= stats["ingest_calls"], (
        "coalescing should never form more ingest batches than calls")
    total_ingested = online.online_stats["ingested_pairs"]
    assert all(s["coalesced_calls"] >= 1 for s in per_call)
    assert 0 < total_ingested <= INGEST_CLIENTS * INGEST_EVENTS_PER_CLIENT, (
        "novel ingested pairs must be positive and bounded by total events")
    return {
        "ingest_calls": stats["ingest_calls"],
        "ingest_batches": stats["ingest_batches"],
        "ingest_events": stats["ingest_events"],
        "ingested_pairs": total_ingested,
    }


def _latency_summary(samples):
    try:
        from .artifacts import latency_summary
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import latency_summary
    return latency_summary(samples)


def run_async_frontend(datasets=None):
    """Parity-check, profile and gate every dataset preset."""
    rows = []
    for name in (datasets or _datasets()):
        service, split, model = _build_service(name)
        plan = _request_plan(split)
        oracle = {}
        for users in plan:
            for user in users:
                if user not in oracle:
                    oracle[user] = [int(i) for i in
                                    service.top_k(np.asarray([user]), TOP_K)[0]]

        naive_s, naive_lat, naive_results = asyncio.run(
            _run_naive(service, plan))
        coalesced_s, lat, results, stats = asyncio.run(
            _run_coalesced(service, plan))

        total = NUM_CLIENTS * REQUESTS_PER_CLIENT
        for user, row in results:
            assert row == oracle[user], (
                f"{name}: coalesced result diverged from direct service.top_k "
                f"for user {user} — 'coalescing never changes results' is "
                f"broken")
        for user, row in naive_results:
            assert row == oracle[user], f"{name}: naive baseline diverged"

        naive_qps = total / naive_s
        coalesced_qps = total / coalesced_s
        speedup = coalesced_qps / naive_qps
        summary = _latency_summary(lat)
        naive_summary = _latency_summary(naive_lat)
        lone_s = asyncio.run(_lone_request_latency(service, split))
        shed_row = asyncio.run(_run_shedding(service, split))
        cache_row = asyncio.run(_warm_cache_stats(model, split))
        ingest_row = asyncio.run(_run_ingest_mix(name))
        service.close()

        assert speedup >= MIN_COALESCED_SPEEDUP, (
            f"{name}: coalesced serving ({coalesced_qps:.0f} qps) is not "
            f"{MIN_COALESCED_SPEEDUP}x the per-request loop "
            f"({naive_qps:.0f} qps) at {NUM_CLIENTS} clients")
        assert summary["p99_ms"] <= P99_BUDGET_MS, (
            f"{name}: p99 latency {summary['p99_ms']:.1f} ms blows the "
            f"budget ({P99_BUDGET_MS:.0f} ms = 4x batch_window "
            f"{BATCH_WINDOW_MS} ms + headroom)")

        rows.append({
            "dataset": name,
            "users": int(split.num_users),
            "items": int(split.num_items),
            "clients": NUM_CLIENTS,
            "requests": total,
            "batch_window_ms": BATCH_WINDOW_MS,
            "max_batch_size": MAX_BATCH_SIZE,
            "naive_qps": naive_qps,
            "coalesced_qps": coalesced_qps,
            "speedup": speedup,
            "mean_occupancy": stats["mean_occupancy"],
            "batches": stats["batches"],
            "naive_p50_ms": naive_summary["p50_ms"],
            "naive_p99_ms": naive_summary["p99_ms"],
            "p50_ms": summary["p50_ms"],
            "p99_ms": summary["p99_ms"],
            "p99_budget_ms": P99_BUDGET_MS,
            "lone_request_ms": lone_s * 1e3,
            "shed": shed_row["shed"],
            "shed_served": shed_row["served"],
            "ingest_calls": ingest_row["ingest_calls"],
            "ingest_batches": ingest_row["ingest_batches"],
            "ingest_events": ingest_row["ingest_events"],
            "cache": cache_row,
            "parity": "exact",
        })
    return rows


def format_rows(rows) -> str:
    header = (f"{'dataset':<10} {'clients':>7} {'naive qps':>10} "
              f"{'coal. qps':>10} {'speedup':>8} {'occ':>6} "
              f"{'p50 ms':>7} {'p99 ms':>7} {'lone ms':>8} {'shed':>5}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['clients']:>7d} "
            f"{row['naive_qps']:>10.0f} {row['coalesced_qps']:>10.0f} "
            f"{row['speedup']:>7.1f}x {row['mean_occupancy']:>6.1f} "
            f"{row['p50_ms']:>7.1f} {row['p99_ms']:>7.1f} "
            f"{row['lone_request_ms']:>8.1f} {row['shed']:>5d}")
    return "\n".join(lines)


def _write_artifact(rows) -> None:
    try:
        from .artifacts import write_artifact
    except ImportError:  # pragma: no cover - direct script execution
        from artifacts import write_artifact
    preset = ",".join(sorted({row["dataset"] for row in rows}))
    write_artifact("bench_async_frontend", rows, preset=preset)


def test_async_frontend():
    rows = run_async_frontend()
    try:
        from .conftest import print_block
        print_block("Async micro-batching frontend — coalesced vs per-request",
                    format_rows(rows))
    except ImportError:  # pragma: no cover - direct script execution
        print(format_rows(rows))
    _write_artifact(rows)


def main() -> int:
    rows = run_async_frontend()
    print(format_rows(rows))
    _write_artifact(rows)
    print(f"OK: coalescing==direct parity exact, >= {MIN_COALESCED_SPEEDUP}x "
          f"qps at {NUM_CLIENTS} clients, p99 within {P99_BUDGET_MS:.0f} ms, "
          f"shedding exercised")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
